"""Tests for channel publication and subscription across peers."""

import pytest

from repro.net import Peer, RemoteChannelProxy, SimNetwork
from repro.net.errors import UnknownChannelError
from repro.streams import collect
from repro.xmlmodel import Element


@pytest.fixture
def network() -> SimNetwork:
    return SimNetwork(seed=1)


@pytest.fixture
def publisher(network) -> Peer:
    return Peer("pub.com", network)


@pytest.fixture
def subscriber(network) -> Peer:
    return Peer("sub.com", network)


class TestPublication:
    def test_publish_and_lookup(self, publisher):
        stream = publisher.create_stream("alerts")
        channel = publisher.publish_channel("X", stream)
        assert channel.qualified_id == "#X@pub.com"
        assert publisher.channels.publishes("X")
        assert publisher.channels.published("X") is channel
        assert publisher.channels.published_ids == ["X"]

    def test_duplicate_channel_rejected(self, publisher):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        with pytest.raises(ValueError):
            publisher.publish_channel("X", stream)

    def test_unknown_channel_lookup(self, publisher):
        with pytest.raises(UnknownChannelError):
            publisher.channels.published("nope")


class TestSubscription:
    def test_remote_subscription_delivers_items(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()  # deliver the subscribe message
        received = collect(proxy)
        stream.emit(Element("alert", {"n": "1"}))
        stream.emit(Element("alert", {"n": "2"}))
        network.run()
        assert [e.attrib["n"] for e in received] == ["1", "2"]
        assert publisher.channels.published("X").subscribers == {"sub.com"}

    def test_items_before_subscription_are_missed(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        stream.emit(Element("alert", {"n": "early"}))
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        received = collect(proxy)
        stream.emit(Element("alert", {"n": "late"}))
        network.run()
        assert [e.attrib["n"] for e in received] == ["late"]

    def test_multiple_subscribers(self, network, publisher):
        peers = [Peer(f"client{i}.com", network) for i in range(3)]
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxies = [p.subscribe_channel("pub.com", "X") for p in peers]
        network.run()
        sinks = [collect(proxy) for proxy in proxies]
        stream.emit(Element("alert"))
        network.run()
        assert all(len(sink) == 1 for sink in sinks)

    def test_duplicate_subscription_returns_same_proxy(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy1 = subscriber.subscribe_channel("pub.com", "X")
        proxy2 = subscriber.subscribe_channel("pub.com", "X")
        assert proxy1 is proxy2

    def test_local_subscription_shortcut(self, network, publisher):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = publisher.subscribe_channel("pub.com", "X")
        received = collect(proxy)
        stream.emit(Element("alert"))
        # no network round trip needed
        assert len(received) == 1
        assert network.stats.total_messages == 0

    def test_eos_propagates_to_proxy(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        stream.emit(Element("alert"))
        stream.close()
        network.run()
        assert proxy.closed

    def test_unsubscribe_stops_delivery(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        received = collect(proxy)
        subscriber.channels.unsubscribe_remote("pub.com", "X")
        network.run()
        stream.emit(Element("alert"))
        network.run()
        assert received == []
        assert publisher.channels.published("X").subscribers == set()

    def test_proxy_lookup(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        subscriber.subscribe_channel("pub.com", "X")
        assert subscriber.channels.proxy("pub.com", "X") is not None
        with pytest.raises(UnknownChannelError):
            subscriber.channels.proxy("pub.com", "Y")

    def test_channel_relay_chain(self, network):
        """a.com -> b.com -> meteo.com relay, as in the Figure 4 plan."""
        a = Peer("a.com", network)
        b = Peer("b.com", network)
        meteo = Peer("meteo.com", network)
        out_a = a.create_stream("outA")
        a.publish_channel("X", out_a)
        # b republishes what it receives from a
        proxy_at_b = b.subscribe_channel("a.com", "X")
        merged = b.create_stream("merged")
        proxy_at_b.subscribe(merged.push)
        b.publish_channel("Y", merged)
        proxy_at_meteo = meteo.subscribe_channel("b.com", "Y")
        network.run()
        received = collect(proxy_at_meteo)
        out_a.emit(Element("alert", {"from": "a"}))
        network.run()
        assert len(received) == 1
        assert received[0].attrib["from"] == "a"


class TestExactlyOnceDelivery:
    """Sequence-numbered items survive a duplicating/reordering network."""

    def test_duplicated_messages_are_dropped_at_the_proxy(self):
        from repro.net import FaultModel

        network = SimNetwork(seed=3, fault_model=FaultModel(duplication_rate=1.0))
        publisher = Peer("pub.com", network)
        subscriber = Peer("sub.com", network)
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        network.set_fault_model(None)  # deploy the subscription cleanly
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        network.set_fault_model(FaultModel(duplication_rate=1.0))
        received = collect(proxy)
        for i in range(5):
            stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        assert [item.attrib["n"] for item in received] == ["0", "1", "2", "3", "4"]
        assert proxy.duplicates_dropped == 5
        assert network.messages_duplicated == 5

    def test_seq_numbers_are_per_subscriber(self):
        network = SimNetwork(seed=1)
        publisher = Peer("pub.com", network)
        first = Peer("a.com", network)
        second = Peer("b.com", network)
        stream = publisher.create_stream("alerts")
        channel = publisher.publish_channel("X", stream)
        proxy_a = first.subscribe_channel("pub.com", "X")
        proxy_b = second.subscribe_channel("pub.com", "X")
        network.run()
        got_a, got_b = collect(proxy_a), collect(proxy_b)
        stream.emit(Element("alert"))
        stream.emit(Element("alert"))
        network.run()
        assert len(got_a) == len(got_b) == 2
        assert channel.next_seq == {"a.com": 2, "b.com": 2}

    def test_stale_subscribe_receives_end_of_channel(self):
        """A subscribe in flight while the channel is withdrawn must not crash."""
        network = SimNetwork(seed=1)
        publisher = Peer("pub.com", network)
        subscriber = Peer("sub.com", network)
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        publisher.unpublish_channel("X")  # withdrawn before the subscribe lands
        network.run()
        assert proxy.closed  # the publisher answered with end-of-channel

    def test_seq_dedup_memory_is_bounded(self):
        proxy = RemoteChannelProxy("pub.com", "X", "sub.com")
        window = RemoteChannelProxy.SEQ_WINDOW
        for seq in range(window * 3):
            assert proxy.accept_seq(seq) is True
        assert len(proxy.seen_seqs) <= window
        # everything inside the retained window still dedups
        assert proxy.accept_seq(window * 3 - 1) is False
        # a seq far below the floor is treated as already seen (safe direction)
        assert proxy.accept_seq(0) is False
