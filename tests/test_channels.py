"""Tests for channel publication and subscription across peers."""

import pytest

from repro.net import Peer, RemoteChannelProxy, SimNetwork
from repro.net.errors import UnknownChannelError
from repro.streams import collect
from repro.xmlmodel import Element


@pytest.fixture
def network() -> SimNetwork:
    return SimNetwork(seed=1)


@pytest.fixture
def publisher(network) -> Peer:
    return Peer("pub.com", network)


@pytest.fixture
def subscriber(network) -> Peer:
    return Peer("sub.com", network)


class TestPublication:
    def test_publish_and_lookup(self, publisher):
        stream = publisher.create_stream("alerts")
        channel = publisher.publish_channel("X", stream)
        assert channel.qualified_id == "#X@pub.com"
        assert publisher.channels.publishes("X")
        assert publisher.channels.published("X") is channel
        assert publisher.channels.published_ids == ["X"]

    def test_duplicate_channel_rejected(self, publisher):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        with pytest.raises(ValueError):
            publisher.publish_channel("X", stream)

    def test_unknown_channel_lookup(self, publisher):
        with pytest.raises(UnknownChannelError):
            publisher.channels.published("nope")


class TestSubscription:
    def test_remote_subscription_delivers_items(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()  # deliver the subscribe message
        received = collect(proxy)
        stream.emit(Element("alert", {"n": "1"}))
        stream.emit(Element("alert", {"n": "2"}))
        network.run()
        assert [e.attrib["n"] for e in received] == ["1", "2"]
        assert publisher.channels.published("X").subscribers == {"sub.com"}

    def test_items_before_subscription_are_missed(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        stream.emit(Element("alert", {"n": "early"}))
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        received = collect(proxy)
        stream.emit(Element("alert", {"n": "late"}))
        network.run()
        assert [e.attrib["n"] for e in received] == ["late"]

    def test_multiple_subscribers(self, network, publisher):
        peers = [Peer(f"client{i}.com", network) for i in range(3)]
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxies = [p.subscribe_channel("pub.com", "X") for p in peers]
        network.run()
        sinks = [collect(proxy) for proxy in proxies]
        stream.emit(Element("alert"))
        network.run()
        assert all(len(sink) == 1 for sink in sinks)

    def test_duplicate_subscription_returns_same_proxy(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy1 = subscriber.subscribe_channel("pub.com", "X")
        proxy2 = subscriber.subscribe_channel("pub.com", "X")
        assert proxy1 is proxy2

    def test_local_subscription_shortcut(self, network, publisher):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = publisher.subscribe_channel("pub.com", "X")
        received = collect(proxy)
        stream.emit(Element("alert"))
        # no network round trip needed
        assert len(received) == 1
        assert network.stats.total_messages == 0

    def test_eos_propagates_to_proxy(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        stream.emit(Element("alert"))
        stream.close()
        network.run()
        assert proxy.closed

    def test_unsubscribe_stops_delivery(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        received = collect(proxy)
        subscriber.channels.unsubscribe_remote("pub.com", "X")
        network.run()
        stream.emit(Element("alert"))
        network.run()
        assert received == []
        assert publisher.channels.published("X").subscribers == set()

    def test_proxy_lookup(self, network, publisher, subscriber):
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        subscriber.subscribe_channel("pub.com", "X")
        assert subscriber.channels.proxy("pub.com", "X") is not None
        with pytest.raises(UnknownChannelError):
            subscriber.channels.proxy("pub.com", "Y")

    def test_channel_relay_chain(self, network):
        """a.com -> b.com -> meteo.com relay, as in the Figure 4 plan."""
        a = Peer("a.com", network)
        b = Peer("b.com", network)
        meteo = Peer("meteo.com", network)
        out_a = a.create_stream("outA")
        a.publish_channel("X", out_a)
        # b republishes what it receives from a
        proxy_at_b = b.subscribe_channel("a.com", "X")
        merged = b.create_stream("merged")
        proxy_at_b.subscribe(merged.push)
        b.publish_channel("Y", merged)
        proxy_at_meteo = meteo.subscribe_channel("b.com", "Y")
        network.run()
        received = collect(proxy_at_meteo)
        out_a.emit(Element("alert", {"from": "a"}))
        network.run()
        assert len(received) == 1
        assert received[0].attrib["from"] == "a"


class TestExactlyOnceDelivery:
    """Sequence-numbered items survive a duplicating/reordering network."""

    def test_duplicated_messages_are_dropped_at_the_proxy(self):
        from repro.net import FaultModel

        network = SimNetwork(seed=3, fault_model=FaultModel(duplication_rate=1.0))
        publisher = Peer("pub.com", network)
        subscriber = Peer("sub.com", network)
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        network.set_fault_model(None)  # deploy the subscription cleanly
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        network.set_fault_model(FaultModel(duplication_rate=1.0))
        received = collect(proxy)
        for i in range(5):
            stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        assert [item.attrib["n"] for item in received] == ["0", "1", "2", "3", "4"]
        assert proxy.duplicates_dropped == 5
        assert network.messages_duplicated == 5

    def test_seq_numbers_are_per_subscriber(self):
        network = SimNetwork(seed=1)
        publisher = Peer("pub.com", network)
        first = Peer("a.com", network)
        second = Peer("b.com", network)
        stream = publisher.create_stream("alerts")
        channel = publisher.publish_channel("X", stream)
        proxy_a = first.subscribe_channel("pub.com", "X")
        proxy_b = second.subscribe_channel("pub.com", "X")
        network.run()
        got_a, got_b = collect(proxy_a), collect(proxy_b)
        stream.emit(Element("alert"))
        stream.emit(Element("alert"))
        network.run()
        assert len(got_a) == len(got_b) == 2
        assert channel.next_seq == {"a.com": 2, "b.com": 2}

    def test_stale_subscribe_receives_end_of_channel(self):
        """A subscribe in flight while the channel is withdrawn must not crash."""
        network = SimNetwork(seed=1)
        publisher = Peer("pub.com", network)
        subscriber = Peer("sub.com", network)
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        publisher.unpublish_channel("X")  # withdrawn before the subscribe lands
        network.run()
        assert proxy.closed  # the publisher answered with end-of-channel

    def test_seq_dedup_memory_is_bounded(self):
        proxy = RemoteChannelProxy("pub.com", "X", "sub.com")
        window = RemoteChannelProxy.SEQ_WINDOW
        for seq in range(window * 3):
            assert proxy.accept_seq(seq) is True
        assert len(proxy.seen_seqs) <= window
        # everything inside the retained window still dedups
        assert proxy.accept_seq(window * 3 - 1) is False
        # a seq far below the floor is treated as already seen (safe direction)
        assert proxy.accept_seq(0) is False


class TestReliableDelivery:
    """Acknowledged delivery: outboxes, retransmission, takeover, adoption."""

    def build(self, seed=2):
        network = SimNetwork(seed=seed)
        publisher = Peer("pub.com", network)
        subscriber = Peer("sub.com", network)
        publisher.channels.reliable = True
        subscriber.channels.reliable = True
        stream = publisher.create_stream("alerts")
        publisher.publish_channel("X", stream)
        proxy = subscriber.subscribe_channel("pub.com", "X")
        network.run()
        return network, publisher, subscriber, stream, proxy

    def test_retransmission_recovers_from_total_loss(self):
        from repro.net import FaultModel

        network, publisher, subscriber, stream, proxy = self.build()
        received = collect(proxy)
        network.set_fault_model(FaultModel(loss_rate=1.0))
        for i in range(3):
            stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        assert received == []
        channel = publisher.channels.published("X")
        assert len(channel.outbox["sub.com"]) == 3  # held until acked
        network.set_fault_model(None)
        publisher.channels.retransmit_tick()
        network.run()
        assert [e.attrib["n"] for e in received] == ["0", "1", "2"]
        assert network.stats.items_retransmitted == 3
        # the acks drained the outbox: nothing left to re-send
        assert not channel.outbox
        publisher.channels.retransmit_tick()
        assert network.stats.items_retransmitted == 3

    def test_confirmed_dead_subscriber_is_not_retransmitted_to(self):
        network, publisher, subscriber, stream, proxy = self.build()
        network.fail_peer("sub.com", notify=False)
        publisher.channels.handle_peer_death("sub.com")
        stream.emit(Element("alert", {"n": "0"}))
        network.run()
        publisher.channels.retransmit_tick()
        network.run()
        # the item waits in the outbox instead of burning retries
        assert network.stats.items_retransmitted == 0
        channel = publisher.channels.published("X")
        assert len(channel.outbox["sub.com"]) == 1

    def test_takeover_subscriber_claims_orphaned_items(self):
        network, publisher, subscriber, stream, proxy = self.build()
        network.fail_peer("sub.com", notify=False)
        publisher.channels.handle_peer_death("sub.com")
        for i in range(2):
            stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        taker = Peer("taker.com", network)
        taker.channels.reliable = True
        takeover_proxy = taker.subscribe_channel("pub.com", "X")
        network.run()  # admit_subscriber claims the dead consumer's items
        received = collect(takeover_proxy)
        channel = publisher.channels.published("X")
        assert channel.subscribers == {"taker.com"}  # claim supersedes dead
        assert channel.dead == set()
        # staged replays flush on the next tick, as fresh sequenced items
        publisher.channels.retransmit_tick()
        network.run()
        assert [e.attrib["n"] for e in received] == ["0", "1"]
        assert network.stats.items_replayed == 2

    def test_rejoining_subscriber_resumes_without_loss(self):
        network, publisher, subscriber, stream, proxy = self.build()
        received = collect(proxy)
        network.fail_peer("sub.com", notify=False)
        publisher.channels.handle_peer_death("sub.com")
        for i in range(2):
            stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        assert received == []
        network.revive_peer("sub.com", notify=False)
        publisher.channels.handle_peer_rejoin("sub.com")
        publisher.channels.retransmit_tick()
        network.run()
        assert [e.attrib["n"] for e in received] == ["0", "1"]

    def test_unreachable_undetected_subscriber_sheds_at_retry_limit(self):
        network, publisher, subscriber, stream, proxy = self.build()
        # down but never confirmed dead: the detector hasn't spoken, so the
        # sweep keeps trying until the per-item retry budget runs out
        network.fail_peer("sub.com", notify=False)
        stream.emit(Element("alert", {"n": "0"}))
        network.run()
        limit = publisher.channels.RETRY_LIMIT
        for _ in range(limit + 1):
            publisher.channels.retransmit_tick()
            network.run()
        assert network.stats.items_retransmitted == limit
        assert network.stats.items_shed == 1
        assert not publisher.channels.published("X").outbox

    def test_adopted_orphans_reach_the_successor_channel(self):
        network = SimNetwork(seed=4)
        publisher = Peer("pub.com", network)
        consumer = Peer("c1.com", network)
        publisher.channels.reliable = True
        consumer.channels.reliable = True
        old_stream = publisher.create_stream("job.e0.s1")
        publisher.publish_channel("job.e0.s1", old_stream)
        consumer.subscribe_channel("pub.com", "job.e0.s1")
        network.run()
        network.fail_peer("c1.com", notify=False)
        publisher.channels.handle_peer_death("c1.com")
        for i in range(2):
            old_stream.emit(Element("alert", {"n": str(i)}))
        network.run()
        # the redeploy publishes the same operator output under the next
        # epoch's name; a fresh consumer subscribes to the new incarnation
        new_stream = publisher.create_stream("job.e1.s1")
        publisher.publish_channel("job.e1.s1", new_stream)
        taker = Peer("c2.com", network)
        taker.channels.reliable = True
        takeover_proxy = taker.subscribe_channel("pub.com", "job.e1.s1")
        network.run()
        received = collect(takeover_proxy)
        assert publisher.channels.adopt_orphans("job.e0.s1", new_stream) == 2
        # the adoption holds one round (the deploy tick's subscribe traffic
        # may still be in flight), then emits into the successor
        publisher.channels.retransmit_tick()
        network.run()
        assert received == []
        publisher.channels.retransmit_tick()
        network.run()
        assert [e.attrib["n"] for e in received] == ["0", "1"]
        assert network.stats.items_replayed == 2

    def test_adoption_sheds_when_the_successor_never_gains_consumers(self):
        network = SimNetwork(seed=5)
        publisher = Peer("pub.com", network)
        consumer = Peer("c1.com", network)
        publisher.channels.reliable = True
        old_stream = publisher.create_stream("job.e0.s1")
        publisher.publish_channel("job.e0.s1", old_stream)
        publisher.channels.admit_subscriber("job.e0.s1", "c1.com")
        network.fail_peer("c1.com", notify=False)
        publisher.channels.handle_peer_death("c1.com")
        old_stream.emit(Element("alert"))
        new_stream = publisher.create_stream("job.e1.s1")
        publisher.publish_channel("job.e1.s1", new_stream)
        assert publisher.channels.adopt_orphans("job.e0.s1", new_stream) == 1
        for _ in range(publisher.channels.RETRY_LIMIT + 2):
            publisher.channels.retransmit_tick()
        assert network.stats.items_shed == 1
        assert publisher.channels._pending_adoptions == []

    def test_unpublish_exact_only_removes_the_given_incarnation(self):
        network = SimNetwork(seed=6)
        publisher = Peer("pub.com", network)
        old = publisher.publish_channel("X", publisher.create_stream("old"))
        assert publisher.channels.unpublish_exact("X", old) is True
        assert not publisher.channels.publishes("X")
        # the name is reused by a replacement; a stale teardown holding the
        # old channel object must not tear the replacement down
        new = publisher.publish_channel("X", publisher.create_stream("new"))
        assert publisher.channels.unpublish_exact("X", old) is False
        assert publisher.channels.published("X") is new
        assert publisher.channels.unpublish_exact("X", new) is True
        assert not publisher.channels.publishes("X")
