"""Tests for the P2PML lexer and parser."""

import pytest

from repro.p2pml import P2PMLSyntaxError, parse_subscription
from repro.p2pml.ast import AlerterSource, NestedSource
from repro.p2pml.lexer import Lexer

METEO_SUBSCRIPTION = """
for $c1 in outCOM(<p>http://a.com</p>
                  <p>http://b.com</p>),
    $c2 in inCOM(<p>http://meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where
    $duration > 10 and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "http://meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type = "slowAnswer">
        <client>{$c1.caller}</client>
        <tstamp>{$c2.callTimestamp}</tstamp>
    </incident>
by publish as channel "alertQoS";
"""


class TestLexer:
    def test_token_stream(self):
        lexer = Lexer('for $x in outCOM(<p>a</p>) where $x.v >= 10')
        types = []
        while True:
            token = lexer.next()
            if token.type == "eof":
                break
            types.append((token.type, token.value))
            if token.value == "outCOM":
                lexer.next()  # consume '('
                fragment = lexer.read_xml_fragment()
                assert fragment.tag == "p"
        assert ("keyword", "for") in types
        assert ("var", "x") in types
        assert ("symbol", ">=") in types
        assert ("number", "10") in types

    def test_comment_skipping(self):
        lexer = Lexer("for % comment to end of line\n$x in f(<p>a</p>)")
        assert lexer.next().value == "for"
        assert lexer.next().type == "var"

    def test_unterminated_string(self):
        lexer = Lexer('where $x.a = "unterminated')
        lexer.next()
        lexer.next()
        lexer.next()
        lexer.next()
        lexer.next()
        with pytest.raises(P2PMLSyntaxError):
            lexer.next()

    def test_path_tail_reading(self):
        lexer = Lexer("/alert[@callMethod = \"GetTemperature\"] and")
        path = lexer.read_path_tail()
        assert path == '/alert[@callMethod = "GetTemperature"]'
        assert lexer.next().value == "and"

    def test_error_reports_position(self):
        lexer = Lexer("for ^")
        lexer.next()
        with pytest.raises(P2PMLSyntaxError) as err:
            lexer.next()
        assert "line 1" in str(err.value)


class TestParserMeteoExample:
    def test_bindings(self):
        ast = parse_subscription(METEO_SUBSCRIPTION)
        assert ast.variables() == ["c1", "c2"]
        c1_source = ast.bindings[0].source
        assert isinstance(c1_source, AlerterSource)
        assert c1_source.function == "outCOM"
        assert c1_source.peers == ["http://a.com", "http://b.com"]
        c2_source = ast.bindings[1].source
        assert c2_source.function == "inCOM"
        assert c2_source.peers == ["http://meteo.com"]

    def test_let_clause(self):
        ast = parse_subscription(METEO_SUBSCRIPTION)
        assert len(ast.lets) == 1
        duration = ast.lets[0]
        assert duration.name == "duration"
        assert [(sign, term.detail) for sign, term in duration.terms] == [
            (1, "responseTimestamp"),
            (-1, "callTimestamp"),
        ]
        assert duration.variables() == {"c1"}

    def test_where_clause(self):
        ast = parse_subscription(METEO_SUBSCRIPTION)
        assert len(ast.conditions) == 4
        rendered = [str(condition) for condition in ast.conditions]
        assert "$duration > 10" in rendered
        assert "$c1.callId = $c2.callId" in rendered
        assert ast.conditions[1].variables() == {"c1"}
        assert ast.conditions[3].variables() == {"c1", "c2"}

    def test_return_template(self):
        ast = parse_subscription(METEO_SUBSCRIPTION)
        assert ast.template.tag == "incident"
        assert ast.template.attrib["type"] == "slowAnswer"
        assert ast.template.find("client").text == "{$c1.caller}"
        assert not ast.distinct

    def test_by_clause(self):
        ast = parse_subscription(METEO_SUBSCRIPTION)
        assert ast.by.mode == "channel"
        assert ast.by.target == "alertQoS"
        assert ast.by.publish


class TestParserVariants:
    def test_local_task_subscription(self):
        # the task assigned to peer a.com at the end of Section 3.4
        text = """
        for $e in outCOM(<p>local</p>)
        let $duration := $e.responseTimestamp - $e.callTimestamp
        where $duration > 10 and $e.callMethod = "GetTemperature"
              and $e.callee = "http://meteo.com"
        return $e
        by channel X and subscribe(b.com, #X, X)
        """
        ast = parse_subscription(text)
        assert ast.return_var == "e"
        assert ast.template is None
        assert ast.by.mode == "channel"
        assert ast.by.target == "X"
        assert ast.by.subscriber == ("b.com", "X", "X")

    def test_nested_subscription(self):
        text = """
        for $x in ( for $y in rss(<p>news.com</p>) return <a>{$y}</a> )
        where $x.kind = "add"
        return <fresh>{$x}</fresh>
        """
        ast = parse_subscription(text)
        nested = ast.bindings[0].source
        assert isinstance(nested, NestedSource)
        assert nested.subscription.variables() == ["y"]
        assert nested.subscription.template.tag == "a"

    def test_membership_driven_alerter(self):
        text = """
        for $j in areRegistered(<p>s.com/dht</p>),
            $c in inCOM($j)
        where $c.callMethod = "Get"
        return <seen>{$c.caller}</seen>
        """
        ast = parse_subscription(text)
        assert ast.bindings[0].source.function == "areRegistered"
        assert ast.bindings[1].source.stream_var == "j"

    def test_distinct_return(self):
        ast = parse_subscription(
            "for $y in rss(<p>a.com</p>) return distinct <a>{$y}</a>"
        )
        assert ast.distinct

    def test_path_condition(self):
        text = (
            'for $c1 in inCOM(<p>a.com</p>) '
            'where $c1/alert[@callMethod = "GetTemperature"] '
            "return <hit>{$c1.callId}</hit>"
        )
        ast = parse_subscription(text)
        condition = ast.conditions[0]
        assert condition.op is None
        assert condition.left.kind == "path"
        assert condition.left.detail == 'alert[@callMethod = "GetTemperature"]'

    def test_email_and_file_publication(self):
        ast = parse_subscription(
            'for $x in rss(<p>a.com</p>) return <a>{$x}</a> by email "ops@example.org"'
        )
        assert ast.by.mode == "email"
        ast = parse_subscription(
            'for $x in rss(<p>a.com</p>) return <a>{$x}</a> by file "out.xml"'
        )
        assert ast.by.mode == "file"

    def test_missing_by_clause_is_allowed(self):
        ast = parse_subscription("for $x in rss(<p>a.com</p>) return <a>{$x}</a>")
        assert ast.by is None


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "for $x outCOM(<p>a</p>) return <a/>",  # missing 'in'
            "for $x in outCOM() return <a/>",  # empty args
            "for $x in outCOM(<p>a</p>) return",  # missing template
            "for $x in outCOM(<p>a</p>) return <a/> by carrier 'pigeon'",
            "for $x in outCOM(<p>a</p>) where $x.a = 1 or $x.b = 2 return <a/>",
            "for $x in outCOM(<p>a</p>) return <a/> extra",
            "for $x in outCOM(<p>a</p) return <a/>",  # bad XML
            "where $x.a = 1 return <a/>",  # missing FOR
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(P2PMLSyntaxError):
            parse_subscription(text)

    def test_non_string_input(self):
        with pytest.raises(P2PMLSyntaxError):
            parse_subscription(None)  # type: ignore[arg-type]
