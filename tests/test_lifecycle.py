"""Subscription lifecycle: handles, bounded results, pause/resume, cancel/teardown."""

import pytest

from repro.monitor import P2PMSystem, SubscriptionStateError
from repro.monitor.lifecycle import DeliveryValve, ResourceLedger, ResultBuffer
from repro.streams.stream import Stream, collect
from repro.workloads import MeteoScenario, RSSFeedSimulator
from repro.xmlmodel.tree import Element


def item(n):
    return Element("item", {"n": str(n)})


class TestResultBuffer:
    def test_bounded_with_oldest_eviction(self):
        buffer = ResultBuffer(max_results=3)
        for n in range(5):
            buffer.push(item(n))
        assert [e.attrib["n"] for e in buffer.snapshot()] == ["2", "3", "4"]
        assert buffer.dropped == 2
        assert len(buffer) == 3

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            ResultBuffer(0)


class TestDeliveryValve:
    def test_pause_retains_and_resume_flushes(self):
        source = Stream("src")
        valve = DeliveryValve(source)
        seen = collect(valve.out)
        source.emit(item(1))
        valve.pause()
        source.emit(item(2))
        source.emit(item(3))
        assert len(seen) == 1 and valve.pending_count == 2
        valve.resume()
        assert [e.attrib["n"] for e in seen] == ["1", "2", "3"]
        assert valve.items_delivered == 3

    def test_pause_buffer_is_bounded(self):
        source = Stream("src")
        valve = DeliveryValve(source, max_pause_buffer=2)
        seen = collect(valve.out)
        valve.pause()
        for n in range(5):
            source.emit(item(n))
        assert valve.dropped_while_paused == 3
        valve.resume()
        assert [e.attrib["n"] for e in seen] == ["3", "4"]

    def test_eos_while_paused_closes_on_resume(self):
        source = Stream("src")
        valve = DeliveryValve(source)
        valve.pause()
        source.emit(item(1))
        source.close()
        assert not valve.out.closed
        valve.resume()
        assert valve.out.closed
        assert valve.out.stats.items == 1

    def test_detach_stops_delivery(self):
        source = Stream("src")
        valve = DeliveryValve(source)
        seen = collect(valve.out)
        valve.detach()
        source.emit(item(1))
        assert seen == [] and valve.out.closed


class TestResourceLedger:
    def test_teardown_runs_when_last_holder_releases(self):
        ledger = ResourceLedger()
        done = []
        ledger.register("r")
        ledger.add_undo("r", lambda: done.append("a"))
        ledger.add_undo("r", lambda: done.append("b"))
        ledger.retain("r", "h1")
        ledger.retain("r", "h2")
        assert not ledger.release("r", "h1") and done == []
        assert ledger.release("r", "h2")
        assert done == ["a", "b"]
        assert not ledger.known("r")
        # further releases of a gone entry are harmless
        assert not ledger.release("r", "h2")

    def test_register_is_idempotent(self):
        ledger = ResourceLedger()
        assert ledger.register("r")
        ledger.retain("r", "h")
        assert not ledger.register("r")
        assert ledger.holders("r") == {"h"}

    def test_failing_undo_does_not_skip_the_rest(self):
        ledger = ResourceLedger()
        done = []
        ledger.register("r")
        ledger.add_undo("r", lambda: done.append("a"))
        ledger.add_undo("r", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        ledger.add_undo("r", lambda: done.append("b"))
        ledger.retain("r", "h")
        with pytest.raises(RuntimeError, match="boom"):
            ledger.release("r", "h")
        assert done == ["a", "b"]  # later undos still ran
        assert not ledger.known("r")


def rss_system(seed=5, **subscribe_options):
    system = P2PMSystem(seed=seed)
    system.add_peer("feeds.example")
    monitor = system.add_peer("watcher.example")
    feed = RSSFeedSimulator("http://feeds.example/rss", seed=seed)
    system.peer("feeds.example").register_feed(feed.feed_url, feed.snapshot)
    handle = monitor.subscribe(
        'for $x in rssFeed(<p>feeds.example</p>) where $x.kind = "add" '
        "return <fresh>{$x.entry}</fresh>",
        sub_id="fresh",
        **subscribe_options,
    )
    system.run()
    return system, monitor, feed, handle


def drive(system, feed, rounds=5):
    alerter = system.peer("feeds.example").alerter("rssFeed")
    alerter.poll()
    for _ in range(rounds):
        feed.tick()
        alerter.poll()
    system.run()


class TestHandleBasics:
    def test_results_require_opt_in(self):
        system, monitor, feed, handle = rss_system()
        with pytest.raises(RuntimeError, match="max_results"):
            handle.results()

    def test_bounded_results_and_stats(self):
        system, monitor, feed, handle = rss_system(max_results=1)
        drive(system, feed, rounds=8)
        results = handle.results()
        assert len(results) == 1  # bounded: only the freshest result retained
        stats = handle.stats()
        assert stats["results_buffered"] == 1
        assert stats["results_dropped"] == stats["items_delivered"] - 1 > 0
        assert stats["status"] == "deployed"
        assert list(handle) == results

    def test_on_result_callback(self):
        system, monitor, feed, handle = rss_system()
        seen = []
        unsubscribe = handle.on_result(seen.append)
        drive(system, feed, rounds=3)
        assert seen and all(e.tag == "fresh" for e in seen)
        count = len(seen)
        unsubscribe()
        drive(system, feed, rounds=3)
        assert len(seen) == count

    def test_failed_deploy_leaves_no_phantom_record(self):
        system = P2PMSystem(seed=9)
        system.add_peer("a.example")
        monitor = system.add_peer("m.example")
        bad = "for $x in noSuchAlerter(<p>a.example</p>) return $x"
        with pytest.raises(ValueError):
            monitor.subscribe(bad, sub_id="retry-me")
        assert "retry-me" not in monitor.manager.database
        # the sub_id is reusable after the failure
        feed = RSSFeedSimulator("http://a.example/rss", seed=9)
        system.peer("a.example").register_feed(feed.feed_url, feed.snapshot)
        handle = monitor.subscribe(
            "for $x in rssFeed(<p>a.example</p>) return $x",
            sub_id="retry-me",
            max_results=10,
        )
        assert handle.status == "deployed"

    def test_manager_hands_out_equivalent_handles(self):
        system, monitor, feed, handle = rss_system(max_results=10)
        other = monitor.manager.handle("fresh")
        drive(system, feed)
        assert other.results() == handle.results()
        assert other.status == handle.status == "deployed"


class TestPauseResume:
    def test_pause_stops_delivery_resume_flushes(self):
        system, monitor, feed, handle = rss_system(max_results=100)
        drive(system, feed, rounds=2)
        before = len(handle.results())
        handle.pause()
        assert handle.status == "paused"
        drive(system, feed, rounds=3)
        assert len(handle.results()) == before
        handle.resume()
        assert handle.status == "deployed"
        assert len(handle.results()) > before

    def test_pause_gates_the_publisher_too(self):
        scenario = MeteoScenario(seed=31, slow_fraction=0.3)
        handle = scenario.deploy()
        scenario.run_traffic(100)
        relayed = handle.publisher.items_published
        handle.pause()
        scenario.run_traffic(100)
        assert handle.publisher.items_published == relayed
        handle.resume()
        assert handle.publisher.items_published == len(scenario.expected_incidents(scenario.calls))

    def test_verbs_are_idempotent(self):
        system, monitor, feed, handle = rss_system()
        handle.resume()  # already deployed: no-op
        handle.pause()
        handle.pause()
        assert handle.status == "paused"
        handle.resume()
        assert handle.status == "deployed"

    def test_no_lifecycle_after_cancel(self):
        system, monitor, feed, handle = rss_system()
        assert handle.cancel()
        assert handle.status == "cancelled"
        assert not handle.is_active
        assert handle.cancel() is False
        with pytest.raises(SubscriptionStateError):
            handle.pause()
        with pytest.raises(SubscriptionStateError):
            handle.resume()


class TestCancelTeardown:
    def test_cancel_detaches_operators_and_retracts_ads(self):
        scenario = MeteoScenario(seed=13, slow_fraction=0.3)
        handle = scenario.deploy()
        scenario.run_traffic(60)
        assert len(handle.results()) > 0
        system = scenario.system
        deployed_operators = sum(len(system.peer(p).operators) for p in system.peer_ids)
        assert deployed_operators == handle.operator_count
        assert system.stream_db.all_stream_descriptions()

        assert handle.cancel()
        # every operator this subscription exclusively owned is detached
        assert sum(len(system.peer(p).operators) for p in system.peer_ids) == 0
        # all Stream Definition Database advertisements are retracted
        assert system.stream_db.all_stream_descriptions() == []
        assert len(system.resources) == 0
        # the published channel name is freed for reuse
        assert not scenario.monitor.net.channels.publishes("alertQoS")

        # traffic after cancel reaches nobody and nothing overflows
        frozen = len(handle.results())
        scenario.run_traffic(60)
        assert len(handle.results()) == frozen

    def test_cancelled_streams_are_invisible_to_reuse(self):
        scenario = MeteoScenario(seed=17, slow_fraction=0.3)
        first = scenario.deploy()
        first.cancel()
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-2", max_results=100
        )
        scenario.system.run()
        assert second.reuse_report.nodes_reused == 0
        scenario.run_traffic(80)
        assert len(second.results()) == len(scenario.expected_incidents(scenario.calls))

    def test_local_mode_subscription_cancels_cleanly(self):
        system, monitor, feed, handle = rss_system(max_results=10)
        drive(system, feed, rounds=2)
        handle.cancel()
        assert len(system.resources) == 0
        assert system.stream_db.all_stream_descriptions() == []

    def test_dynamic_membership_cancel_disconnects_sources(self):
        system = P2PMSystem(seed=5)
        server = system.add_peer("server0.example")
        monitor = system.add_peer("monitor.example")
        handle = monitor.subscribe(
            """
            for $j in areRegistered(<p>monitor.example</p>),
                $c in inCOM($j)
            where $c.callMethod = "Get"
            return <seen callee="{$c.callee}"/>
            """,
            sub_id="dynamic-watch",
            max_results=100,
        )
        system.run()
        system.kadop.join_peer("server0.example")
        system.run()
        assert any(p.dynamic_sources for p in (system.peer(i) for i in system.peer_ids))
        handle.cancel()
        assert all(
            not system.peer(peer_id).dynamic_sources for peer_id in system.peer_ids
        )
        assert len(system.resources) == 0


class TestCancelReuseInteraction:
    """The satellite scenario: cancel a subscription whose streams are reused."""

    def test_shared_streams_survive_first_cancel_then_full_teardown(self):
        scenario = MeteoScenario(seed=23, slow_fraction=0.3)
        system = scenario.system
        first = scenario.deploy()
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-2", max_results=10_000
        )
        system.run()
        assert second.reuse_report.nodes_reused > 0
        scenario.run_traffic(80)
        assert len(second.results()) == len(first.results()) > 0

        assert first.cancel()
        # the shared streams and the shared alerters survive ...
        assert sum(len(system.peer(p).operators) for p in system.peer_ids) > 0
        assert system.stream_db.find_alerter_streams("a.com", "outCOM")
        assert system.peer("a.com").alerter("outCOM") is not None
        # ... and the co-subscriber keeps receiving results
        scenario.run_traffic(80)
        assert len(second.results()) == len(scenario.expected_incidents(scenario.calls))
        assert len(second.results()) > len(first.results())

        assert second.cancel()
        # now everything is gone: operators, advertisements, ledger entries
        assert sum(len(system.peer(p).operators) for p in system.peer_ids) == 0
        assert system.stream_db.all_stream_descriptions() == []
        assert system.stream_db.find_alerter_streams("a.com", "outCOM") == []
        assert len(system.resources) == 0

    def test_partial_overlap_releases_only_shared_sources(self):
        scenario = MeteoScenario(seed=29, slow_fraction=0.3)
        system = scenario.system
        first = scenario.deploy()
        other = scenario.monitor.subscribe(
            """
            for $c in outCOM(<p>a.com</p>)
            where $c.callMethod = "GetHumidity"
            return <humidity-call>{$c.callId}</humidity-call>
            by publish as channel "humidity";
            """,
            sub_id="humidity-watch",
            max_results=1000,
        )
        system.run()
        assert any(kind == "alerter" for kind, _, _ in other.reuse_report.reused)

        first.cancel()
        # the overlapping alerter stream stays advertised for the survivor
        assert system.stream_db.find_alerter_streams("a.com", "outCOM")
        scenario.run_traffic(100)
        humidity_calls = [
            c for c in scenario.calls if c.method == "GetHumidity" and c.caller == "a.com"
        ]
        assert len(other.results()) == len(humidity_calls) > 0

        other.cancel()
        assert system.stream_db.all_stream_descriptions() == []
        assert len(system.resources) == 0


class TestChannelNameLifecycle:
    """The satellite: collision-suffixed names agree everywhere and are freed."""

    def find_publisher_ads(self, system, peer_id):
        return [
            d
            for d in system.stream_db.all_stream_descriptions()
            if d.operator == "Publisher" and d.peer_id == peer_id
        ]

    def test_suffixed_name_agrees_across_bookkeeping_and_streamdb(self):
        scenario = MeteoScenario(seed=37)
        first = scenario.deploy()
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-2", max_results=10
        )
        scenario.system.run()
        monitor_id = scenario.monitor.peer_id
        assert second.publisher.channel_id == "alertQoS-2"
        assert f"#alertQoS-2@{monitor_id}" in second.channels_created
        advertised = {d.stream_id for d in self.find_publisher_ads(scenario.system, monitor_id)}
        assert {"alertQoS", "alertQoS-2"} <= advertised
        assert scenario.monitor.net.channels.publishes("alertQoS-2")

    def test_cancel_frees_the_channel_name(self):
        scenario = MeteoScenario(seed=41)
        first = scenario.deploy()
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-2", max_results=10
        )
        scenario.system.run()
        assert second.publisher.channel_id == "alertQoS-2"
        second.cancel()
        monitor_id = scenario.monitor.peer_id
        assert not scenario.monitor.net.channels.publishes("alertQoS-2")
        advertised = {d.stream_id for d in self.find_publisher_ads(scenario.system, monitor_id)}
        assert "alertQoS-2" not in advertised
        # a later subscription gets the freed name again, not -3
        third = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-3", max_results=10
        )
        scenario.system.run()
        assert third.publisher.channel_id == "alertQoS-2"
        first.cancel()
        third.cancel()
        assert len(scenario.system.resources) == 0
