"""Tests for the declarative chaos-scenario harness and its invariants."""

import pytest

from repro.net.faults import FaultModel
from repro.scenarios import (
    ChaosScenario,
    ChurnSpec,
    ScenarioAction,
    make_scenario,
    scenario_names,
)
from repro.scenarios.invariants import check


class TestGoldenTrace:
    """Acceptance criterion: same seed => byte-identical event traces."""

    def test_same_seed_identical_trace(self):
        first = make_scenario("churn-failover", seed=5).run()
        second = make_scenario("churn-failover", seed=5).run()
        assert first.event_log == second.event_log
        assert first.received == second.received
        assert first.fingerprint == second.fingerprint

    def test_different_seed_differs(self):
        first = make_scenario("churn-soak", seed=5).run()
        second = make_scenario("churn-soak", seed=6).run()
        assert first.fingerprint != second.fingerprint

    def test_trace_records_disruptions(self):
        result = make_scenario("partition-heal", seed=0).run()
        assert any("partition split" in event for event in result.event_log)
        assert any("heal split" in event for event in result.event_log)
        assert any("hold split" in event for event in result.event_log)


class TestCatalog:
    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("seed", [0, 7])
    def test_scenario_invariants_hold(self, name, seed):
        result = make_scenario(name, seed=seed).run()
        failures = [inv for inv in result.invariants if not inv.ok]
        assert not failures, f"{name} seed={seed}: {failures}"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("nope")

    def test_unknown_invariant_rejected(self):
        result = make_scenario("partition-heal", seed=0).run()
        with pytest.raises(ValueError):
            check("made-up", result)


class TestAcceptance:
    """The issue's end-to-end criterion, asserted step by step."""

    def test_failed_peer_recovers_and_resumes_without_duplicates(self):
        scenario = ChaosScenario(
            name="acceptance",
            seed=2,
            n_sources=3,
            ticks=20,
            schedule=(
                ScenarioAction(
                    3,
                    "partition",
                    {"name": "cut", "groups": [["@monitor"], ["@sources"]]},
                ),
                ScenarioAction(7, "heal", "cut"),
                ScenarioAction(10, "fail", "@union-host"),
                ScenarioAction(16, "revive", "@union-host"),
            ),
            invariants=("exactly-once", "no-duplicates", "recovers"),
        )
        result = scenario.run()
        assert result.ok, [inv for inv in result.invariants if not inv.ok]
        # the subscription went through RECOVERING and was redeployed degraded
        outcomes = [event.outcome for event in result.recovery_events]
        assert "recovering" in outcomes
        assert "degraded" in outcomes
        assert result.final_status == "deployed"
        # it kept delivering after the failure: alerts numbered past the fail
        # tick arrived from the surviving sources
        fail_tick = next(t for t, kind, _ in result.disruptions if kind == "fail")
        assert any(n > fail_tick for _, n in result.received)
        # and exactly-once held across the partition heal
        assert sorted(result.received) == sorted(set(result.emitted))

    def test_flaky_network_duplicates_are_dropped(self):
        scenario = ChaosScenario(
            name="dup-test",
            seed=4,
            n_sources=2,
            ticks=12,
            fault_model=FaultModel(duplication_rate=1.0),
            invariants=("exactly-once", "no-duplicates"),
        )
        result = scenario.run()
        assert result.network_counters["duplicated"] > 0
        assert result.ok, [inv for inv in result.invariants if not inv.ok]

    def test_churn_spec_is_deterministic(self):
        scenario_a = ChaosScenario(
            name="churny",
            seed=9,
            n_sources=4,
            ticks=25,
            churn=ChurnSpec(fail_rate=0.3, revive_rate=0.5, max_down=2),
            invariants=("no-duplicates", "drain-delivered"),
        )
        scenario_b = ChaosScenario(
            name="churny",
            seed=9,
            n_sources=4,
            ticks=25,
            churn=ChurnSpec(fail_rate=0.3, revive_rate=0.5, max_down=2),
            invariants=("no-duplicates", "drain-delivered"),
        )
        first, second = scenario_a.run(), scenario_b.run()
        assert first.disruptions == second.disruptions
        assert first.fingerprint == second.fingerprint
        assert first.ok and second.ok


class TestRunnerCli:
    def test_main_pass_and_determinism(self, capsys):
        from scenarios.run_scenario import main

        assert main(["partition-heal", "--seed", "1", "--check-determinism"]) == 0
        out = capsys.readouterr().out
        assert "determinism: identical trace" in out

    def test_main_json_output(self, capsys):
        import json

        from scenarios.run_scenario import main

        assert main(["churn-failover", "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["scenario"] == "churn-failover"

    def test_main_list(self, capsys):
        from scenarios.run_scenario import main

        assert main(["--list"]) == 0
        assert "partition-heal" in capsys.readouterr().out
