"""Tests for ActiveXML service calls and lazy materialisation."""

import pytest

from repro.xmlmodel import Element, make_service_call, materialize, parse_xml
from repro.xmlmodel.axml import (
    ServiceNotFoundError,
    ServiceRegistry,
    decode_service_call,
    has_service_calls,
    is_service_call,
)


@pytest.fixture
def registry() -> ServiceRegistry:
    reg = ServiceRegistry()
    reg.register(
        "storage",
        "site",
        lambda params: [parse_xml("<c><d>stored data</d></c>")],
    )
    return reg


def make_active_doc() -> Element:
    root = Element("root", {"attr1": "x", "attr2": "y"})
    root.append(make_service_call("storage", "site", Element("parameters")))
    return root


class TestServiceCallElements:
    def test_make_and_detect(self):
        sc = make_service_call("storage", "site")
        assert is_service_call(sc)
        assert sc.attrib["service"] == "storage"
        assert not is_service_call(Element("sc"))
        assert not is_service_call(Element("other", {"service": "s", "address": "a"}))

    def test_decode(self):
        sc = make_service_call("storage", "site", Element("parameters"))
        call = decode_service_call(sc)
        assert call.service == "storage"
        assert call.address == "site"
        assert call.key() == "storage@site"
        assert call.parameters.tag == "parameters"

    def test_decode_rejects_non_sc(self):
        with pytest.raises(ValueError):
            decode_service_call(Element("x"))

    def test_has_service_calls(self):
        assert has_service_calls(make_active_doc())
        assert not has_service_calls(Element("root"))


class TestMaterialize:
    def test_replaces_sc_with_result(self, registry):
        doc = make_active_doc()
        result = materialize(doc, registry)
        assert not has_service_calls(result)
        assert result.find("c").find("d").text == "stored data"
        assert registry.calls_performed == 1

    def test_original_untouched(self, registry):
        doc = make_active_doc()
        materialize(doc, registry)
        assert has_service_calls(doc)

    def test_missing_service_raises(self):
        doc = make_active_doc()
        with pytest.raises(ServiceNotFoundError):
            materialize(doc, ServiceRegistry())

    def test_nested_results_materialised(self):
        reg = ServiceRegistry()
        reg.register("outer", "p", lambda _: [
            Element("wrap", children=[make_service_call("inner", "p")])
        ])
        reg.register("inner", "p", lambda _: [Element("leaf", text="deep")])
        doc = Element("root", children=[make_service_call("outer", "p")])
        result = materialize(doc, reg)
        assert not has_service_calls(result)
        assert result.find("wrap").find("leaf").text == "deep"
        assert reg.calls_performed == 2

    def test_multiple_results_spliced_in_order(self):
        reg = ServiceRegistry()
        reg.register("many", "p", lambda _: [Element("a"), Element("b")])
        doc = Element("root", children=[Element("before"), make_service_call("many", "p"), Element("after")])
        result = materialize(doc, reg)
        assert [c.tag for c in result.children] == ["before", "a", "b", "after"]

    def test_reset_counters(self, registry):
        materialize(make_active_doc(), registry)
        registry.reset_counters()
        assert registry.calls_performed == 0

    def test_results_are_copies(self):
        shared = Element("shared", text="original")
        reg = ServiceRegistry()
        reg.register("svc", "p", lambda _: [shared])
        doc = Element("root", children=[make_service_call("svc", "p")])
        out = materialize(doc, reg)
        out.find("shared").text = "mutated"
        assert shared.text == "original"
