"""Tests for the KadoP-style XML index (Stream Definition Database substrate)."""

import pytest

from repro.dht import ChordRing, KadopIndex
from repro.dht.kadop import MembershipEvent, _terms_of_query
from repro.xmlmodel import XPath, parse_xml


def stream_description(peer: str, stream: str, operator_xml: str, operands: str = "") -> str:
    return (
        f'<Stream PeerId="{peer}" StreamId="{stream}" isAChannel="true">'
        f"<Operator>{operator_xml}</Operator>"
        f"<Operands>{operands}</Operands>"
        f"<Stats avgVolume='10'/>"
        f"</Stream>"
    )


@pytest.fixture
def index() -> KadopIndex:
    ring = ChordRing()
    for i in range(8):
        ring.join(f"storage{i}")
    idx = KadopIndex(ring)
    idx.publish(parse_xml(stream_description("p1", "s1", "<inCom/>")), "d1")
    idx.publish(parse_xml(stream_description("p2", "s2", "<outCom/>")), "d2")
    idx.publish(
        parse_xml(
            stream_description(
                "p1",
                "s3",
                "<Filter/>",
                '<Operand OPeerId="p1" OStreamId="s1"/>',
            )
        ),
        "d3",
    )
    return idx


class TestPublication:
    def test_publish_assigns_ids(self):
        index = KadopIndex()
        doc_id = index.publish(parse_xml("<Stream PeerId='p'/>"))
        assert doc_id == "doc1"
        assert index.document(doc_id) is not None
        assert index.document_ids == ["doc1"]

    def test_document_lookup_missing(self, index):
        assert index.document("ghost") is None

    def test_published_copy_is_independent(self):
        index = KadopIndex()
        source = parse_xml("<Stream PeerId='p'/>")
        index.publish(source, "d")
        source.set("PeerId", "mutated")
        assert index.document("d").attrib["PeerId"] == "p"

    def test_unpublish(self, index):
        assert index.unpublish("d1")
        assert index.document("d1") is None
        assert not index.unpublish("d1")
        assert index.query("/Stream[Operator/inCom]") == []


class TestQueries:
    def test_alerter_discovery_query(self, index):
        # "find streams produced by alerters on p1"
        results = index.query("/Stream[@PeerId = 'p1'][Operator/inCom]")
        assert [doc_id for doc_id, _ in results] == ["d1"]

    def test_filter_over_operand_query(self, index):
        query = (
            "/Stream[Operator/Filter]"
            "[Operands/Operand[@OPeerId='p1'][@OStreamId='s1']]"
        )
        results = index.query(query)
        assert [doc_id for doc_id, _ in results] == ["d3"]

    def test_no_match(self, index):
        assert index.query("/Stream[Operator/Join]") == []

    def test_query_accepts_compiled_xpath(self, index):
        results = index.query(XPath.compile("/Stream[@PeerId='p2']"))
        assert [doc_id for doc_id, _ in results] == ["d2"]

    def test_wildcard_only_query_scans_catalogue(self, index):
        results = index.query("//*[@StreamId='s2']")
        assert [doc_id for doc_id, _ in results] == ["d2"]

    def test_query_lookup_cost_reports_hops(self, index):
        cost = index.query_lookup_cost("/Stream[@PeerId = 'p1'][Operator/inCom]")
        assert cost["results"] == 1
        assert cost["lookups"] > 0
        assert cost["hops_per_lookup"] >= 0.0

    def test_results_sorted_by_doc_id(self, index):
        results = index.query("/Stream[@PeerId='p1']")
        assert [doc_id for doc_id, _ in results] == ["d1", "d3"]


class TestTermExtraction:
    def test_tags_and_attribute_terms(self):
        terms = _terms_of_query(XPath.compile("/Stream[@PeerId = 'p1'][Operator/inCom]"))
        assert "tag:Stream" in terms
        assert "attr:Stream@PeerId=p1" in terms
        assert "tag:Operator" in terms
        assert "tag:inCom" in terms

    def test_or_predicates_are_not_required_terms(self):
        terms = _terms_of_query(XPath.compile("/Stream[@a='1' or @b='2']"))
        assert "attr:Stream@a=1" not in terms
        assert "tag:Stream" in terms

    def test_wildcard_contributes_no_tag(self):
        terms = _terms_of_query(XPath.compile("//*[@x='1']"))
        assert terms == set()


class TestMembership:
    def test_join_leave_events(self):
        index = KadopIndex()
        events: list[MembershipEvent] = []
        index.subscribe_membership(events.append)
        index.join_peer("new.com")
        index.leave_peer("new.com")
        assert [e.kind for e in events] == ["join", "leave"]
        assert events[0].to_element().tag == "p-join"
        assert events[1].to_element().tag == "p-leave"
        assert events[0].to_element().text == "new.com"

    def test_documents_survive_membership_churn(self, index):
        index.join_peer("extra1")
        index.join_peer("extra2")
        index.leave_peer("storage3")
        results = index.query("/Stream[@PeerId = 'p1'][Operator/inCom]")
        assert [doc_id for doc_id, _ in results] == ["d1"]
