"""Single-process vs sharded runtime: same results, documented restrictions.

The sharded backend re-executes the same deployed plans in forked worker
processes, so its correctness statement is *multiset equivalence*: for any
workload the single-process runtime can also run (no peer churn, oracle
failure mode), both backends must deliver exactly the same multiset of
results.  Trace fingerprints are NOT compared across runtimes -- each shard
drains its own event heap, so cross-shard interleaving legitimately differs
-- which is also why loss-rate fault models are excluded here (which
messages are lost depends on per-shard RNG consumption order).
"""

import pytest

from repro.monitor import P2PMSystem
from repro.net.shard import shard_of
from repro.net.simnet import Message
from repro.net.wire import (
    decode_batch,
    decode_element,
    encode_batch,
    encode_element,
)
from repro.scenarios import make_scenario
from repro.workloads import EdosNetwork, MeteoScenario
from repro.xmlmodel.tree import Element


def canonical(element: Element):
    """A hashable, order-stable rendering of a result item."""
    return encode_element(element)


def result_multiset(items):
    return sorted(repr(canonical(item)) for item in items)


# -- deterministic shard assignment --------------------------------------------------


class TestShardOf:
    def test_deterministic_across_calls(self):
        assert shard_of("mirror0.edos.org", 4) == shard_of("mirror0.edos.org", 4)

    def test_in_range(self):
        for n in (2, 3, 8):
            for i in range(200):
                assert 0 <= shard_of(f"peer{i}", n) < n

    def test_spreads_peers(self):
        assignments = {shard_of(f"peer{i}", 4) for i in range(100)}
        assert assignments == {0, 1, 2, 3}


# -- the wire codec ------------------------------------------------------------------


class TestWireCodec:
    def make_tree(self):
        return Element(
            "alert",
            {"type": "slowAnswer", "n": "7"},
            [
                Element("call", {"callId": "42"}),
                Element("body", {"sev": "3"}, text="payload text"),
            ],
            text=None,
        )

    def test_element_roundtrip(self):
        tree = self.make_tree()
        decoded = decode_element(encode_element(tree))
        # re-encoding the decoded tree must be byte-identical: the codec is
        # the only thing crossing the process boundary, so it is the
        # equality oracle
        assert encode_element(decoded) == encode_element(tree)

    def test_batch_preserves_payload_sharing(self):
        payload = self.make_tree()
        messages = [
            Message("a", "b", "data", payload, 10, 0.0, 0.5),
            Message("a", "c", "data", payload, 10, 0.0, 0.7),
        ]
        decoded = decode_batch(encode_batch(messages))
        assert len(decoded) == 2
        # one fan-out payload is encoded once and decoded once
        assert decoded[0].payload is decoded[1].payload
        assert decoded[0].destination == "b"
        assert decoded[1].deliver_at == 0.7
        assert encode_element(decoded[0].payload) == encode_element(payload)


# -- workload equivalence ------------------------------------------------------------


class TestMeteoEquivalence:
    def run_meteo(self, runtime: str, shards: int = 0):
        scenario = MeteoScenario(
            threshold=10.0,
            slow_fraction=0.2,
            seed=11,
            runtime=runtime,
            shards=shards,
        )
        scenario.deploy()
        scenario.run_traffic(200)
        scenario.system.shutdown()
        return scenario

    def test_sharded_matches_single(self):
        single = self.run_meteo("single")
        sharded = self.run_meteo("sharded", shards=3)
        expected = single.expected_incidents(single.calls)
        assert expected, "workload must produce incidents for a meaningful test"
        assert result_multiset(sharded.incidents()) == result_multiset(
            single.incidents()
        )
        assert len(single.incidents()) == len(expected)

    def test_sharded_crosses_shard_boundaries(self):
        sharded = self.run_meteo("sharded", shards=3)
        stats = sharded.system.runtime.stats()
        assert stats["messages_exchanged"] > 0
        assert stats["results_harvested"] == len(sharded.incidents())


class TestEdosEquivalence:
    SUBSCRIPTION = """
        for $c in inCOM(<p>mirror0.edos.org</p> <p>mirror1.edos.org</p>)
        where $c.callMethod = "DownloadPackage" and $c.status = "fault"
        return <failure><mirror>{$c.callee}</mirror><client>{$c.caller}</client></failure>
        by publish as channel "edosFailures";
    """

    @pytest.fixture(scope="class")
    def event_log(self):
        # generate the event stream ONCE, detached from any system, so both
        # runtimes observe literally the same calls
        edos = EdosNetwork(n_mirrors=2, n_clients=10, failure_rate=0.3, seed=23)
        edos.run(300)
        return edos

    def run_monitoring(self, event_log, runtime: str, shards: int = 0):
        kwargs = {"seed": 23}
        if runtime == "sharded":
            kwargs.update(runtime="sharded", shards=shards)
        system = P2PMSystem(**kwargs)
        mirrors = set(event_log.mirrors)
        for mirror in event_log.mirrors:
            system.add_peer(mirror)
        monitor = system.add_peer("monitor.edos.org")
        task = monitor.subscribe(
            self.SUBSCRIPTION, sub_id="edos-failures", max_results=4096
        )
        system.run()
        system.start_runtime()
        for event in event_log.events:
            if event.call is not None and event.call.callee in mirrors:
                system.drive_alerter(
                    event.call.callee, "inCOM", "observe_call", event.call
                )
        system.run()
        system.shutdown()
        return task

    def test_sharded_matches_single(self, event_log):
        single = self.run_monitoring(event_log, "single")
        sharded = self.run_monitoring(event_log, "sharded", shards=2)
        reference = event_log.reference_statistics()
        assert reference["failed_downloads"] > 0
        assert len(single.results()) == reference["failed_downloads"]
        assert result_multiset(sharded.results()) == result_multiset(
            single.results()
        )


class TestCatalogEquivalence:
    # lossy-network is shardable but NOT multiset-comparable: which messages
    # the loss model drops depends on per-shard RNG consumption order
    @pytest.mark.parametrize("name", ["partition-heal", "flaky-network"])
    def test_same_delivered_multiset(self, name):
        single = make_scenario(name, seed=3, failure_mode="oracle").run()
        sharded = make_scenario(name, seed=3, runtime="sharded", shards=2).run()
        assert single.received, "scenario must deliver something"
        assert sorted(single.received) == sorted(sharded.received)

    def test_non_shardable_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="cannot run sharded"):
            make_scenario("churn-soak", seed=0, runtime="sharded")


# -- v1 restrictions -----------------------------------------------------------------


class TestShardedRestrictions:
    def test_detector_failure_mode_is_rejected(self):
        with pytest.raises(ValueError, match="oracle"):
            P2PMSystem(runtime="sharded", shards=2, failure_mode="detector")

    def test_reliable_control_is_rejected(self):
        with pytest.raises(ValueError, match="reliable_control"):
            P2PMSystem(
                runtime="sharded",
                shards=2,
                failure_mode="oracle",
                reliable_control=True,
            )

    def test_reliable_channels_is_rejected(self):
        with pytest.raises(ValueError, match="reliable_channels"):
            P2PMSystem(
                runtime="sharded",
                shards=2,
                failure_mode="oracle",
                reliable_channels=True,
            )

    def test_fewer_than_two_shards_is_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            P2PMSystem(runtime="sharded", shards=1, failure_mode="oracle")

    def test_unknown_runtime_is_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            P2PMSystem(runtime="distributed")

    def make_started_system(self):
        system = P2PMSystem(runtime="sharded", shards=2, failure_mode="oracle")
        system.add_peer("src")
        monitor = system.add_peer("monitor")
        monitor.subscribe(
            """
            for $x in chaosFeed(<p>src</p>)
            where $x.kind = "chaos" and $x.n >= 1
            return <seen>{$x.n}</seen>
            """,
            sub_id="watch",
            max_results=64,
        )
        system.run()
        system.start_runtime()
        return system, monitor

    def test_post_start_mutations_raise(self):
        system, monitor = self.make_started_system()
        try:
            with pytest.raises(RuntimeError, match="subscribe"):
                monitor.subscribe(
                    "for $x in chaosFeed(<p>src</p>) "
                    'where $x.kind = "chaos" return <late/>',
                    sub_id="late",
                )
            with pytest.raises(RuntimeError, match="fail_peer"):
                system.fail_peer("src")
            with pytest.raises(RuntimeError, match="add_peer"):
                system.add_peer("newcomer")
        finally:
            system.shutdown()

    def test_shutdown_is_idempotent(self):
        system, _ = self.make_started_system()
        system.shutdown()
        system.shutdown()


# -- the default backend is untouched ------------------------------------------------


class TestDefaultRuntime:
    def test_default_is_single_process(self):
        system = P2PMSystem()
        assert system.runtime.name == "single"

    def test_explicit_single_matches_default_fingerprint(self):
        default = make_scenario("partition-heal", seed=0, failure_mode="oracle").run()
        explicit = make_scenario(
            "partition-heal", seed=0, failure_mode="oracle", runtime="single"
        ).run()
        assert default.fingerprint == explicit.fingerprint
