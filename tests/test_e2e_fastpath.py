"""The delivery fast path must not change observable behaviour.

PR 4 rewrote the publish->deliver->process pipeline for throughput: cached
``Element.weight()``/``size()``, a batched channel fan-out that shares one
payload copy (and one wrapper per sequence number) across subscribers, a
slimmed ``SimNetwork`` scheduler with a no-fault fast path, and lazy
network-stats aggregation.  These tests pin the *pre-rewrite* behaviour:

* golden trace fingerprints of seeded chaos scenarios, captured on the
  commit immediately before the rewrite -- a differential test against the
  old scheduler without keeping the old code around;
* the exact per-subscriber delivery order of a seeded faulty fan-out;
* weight/size cache invalidation semantics (mutate-after-weight must
  recompute, including through ancestors);
* equivalence of ``send_many`` with a loop of ``send`` calls.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.net.faults import FaultModel
from repro.net.peer import Peer
from repro.net.simnet import SimNetwork
from repro.scenarios.catalog import make_scenario
from repro.xmlmodel.tree import Element


#: Fingerprints captured on the pre-fast-path scheduler (PR 3 tree) for the
#: same scenario/seed pairs.  The rewrite must reproduce them byte for byte.
GOLDEN_FINGERPRINTS = {
    ("flaky-network", 0): (
        "36517f09c0087bb62f8357b9b4158556e064a82c8ec635e88b27cedec60e1735"
    ),
    ("partition-heal", 7): (
        "14fb7e0c7bb6665befab9b72dc3146d628bc4f1001c904aea5be50afd4c55563"
    ),
    ("lossy-network", 0): (
        "1dfc3881162bba9eefbf37cebb15a79fdeaf63450b9abd9d633d7dbca238dcdf"
    ),
    # re-pinned twice: first when dead-destination drops became symmetric
    # (sends *to* an already-failed peer drop at send time, moving 15
    # churn-soak drop lines earlier in the trace), then when recovery
    # redeployment became make-before-break (the replacement deploys before
    # the old incarnation is torn down, so unpublish/EOS traffic now follows
    # the new subscribes).  The other three scenarios never redeploy and
    # never send to a down peer, so their traces are untouched.
    ("churn-soak", 42): (
        "d9e1656c98e27aaee85be891ec2af41c08f5ef1245a25648fd0148849db22091"
    ),
}

#: sha256(repr(order)) of the (subscriber, item-number) delivery sequence of
#: the seeded faulty fan-out below, captured pre-rewrite; plus the network's
#: own event-trace fingerprint and the delivered-message count.
GOLDEN_FANOUT_ORDER = (
    "31b26d02c59afbdd8eeb4efe91e746074efad077fa55a91635e2e76ed2cc7c9f"
)
GOLDEN_FANOUT_TRACE = (
    "7e63dffca33ee0e6e03b9e1d3f843669a3af20dd806c9f7e8627d442a9e39397"
)
GOLDEN_FANOUT_DELIVERIES = 488


class TestSchedulerDifferential:
    @pytest.mark.parametrize("name,seed", sorted(GOLDEN_FINGERPRINTS))
    def test_chaos_scenario_fingerprints_unchanged(self, name: str, seed: int):
        # oracle mode pins the legacy trace: no heartbeats, no acks, no
        # retransmissions -- the detector-mode machinery must stay fully
        # inert when the failure oracle is on
        result = make_scenario(name, seed=seed, failure_mode="oracle").run()
        assert result.ok, [inv for inv in result.invariants if not inv.ok]
        assert result.fingerprint == GOLDEN_FINGERPRINTS[(name, seed)]

    def test_faulty_fanout_delivery_order_unchanged(self):
        network = SimNetwork(
            seed=3,
            fault_model=FaultModel(
                loss_rate=0.1, duplication_rate=0.1, jitter=0.002, bandwidth=50000
            ),
        )
        network.record_events = True
        publisher = Peer("pub", network)
        subscriber_peers = [Peer(f"sub{i}", network) for i in range(20)]
        stream = publisher.create_stream("s")
        publisher.publish_channel("ch", stream)
        proxies = [p.subscribe_channel("pub", "ch") for p in subscriber_peers]
        network.run()

        order: list[tuple[str, str | None]] = []
        for proxy, peer in zip(proxies, subscriber_peers):
            proxy.subscribe(
                lambda item, sid=peer.peer_id: order.append(
                    (sid, item.attrib.get("n"))
                )
            )
        for n in range(30):
            stream.emit(
                Element("alert", {"n": n}, [Element("body", text="x" * 50)])
            )
        network.run_until_idle()

        assert len(order) == GOLDEN_FANOUT_DELIVERIES
        digest = hashlib.sha256(repr(order).encode("utf-8")).hexdigest()
        assert digest == GOLDEN_FANOUT_ORDER
        assert network.trace_fingerprint() == GOLDEN_FANOUT_TRACE

    def test_rerun_is_deterministic(self):
        first = make_scenario("flaky-network", seed=5).run()
        second = make_scenario("flaky-network", seed=5).run()
        assert first.fingerprint == second.fingerprint


class TestWeightCache:
    def make_tree(self) -> Element:
        return Element(
            "alert",
            {"type": "slow"},
            [Element("call", {"id": "7"}), Element("body", text="hello")],
        )

    def uncached_weight(self, node: Element) -> int:
        total = 2 * len(node.tag) + 5
        for name, value in node.attrib.items():
            total += len(name) + len(value) + 4
        if node.text:
            total += len(node.text)
        for child in node.children:
            total += self.uncached_weight(child)
        return total

    def test_weight_is_cached_and_correct(self):
        tree = self.make_tree()
        assert tree.weight() == self.uncached_weight(tree)
        assert tree.weight() == tree.weight()

    def test_mutate_after_weight_recomputes(self):
        tree = self.make_tree()
        before = tree.weight()
        tree.set("extra", "attribute-value")
        assert tree.weight() == self.uncached_weight(tree)
        assert tree.weight() != before

    def test_child_mutation_invalidates_ancestors(self):
        tree = self.make_tree()
        tree.weight(), tree.size()
        tree.children[1].text = "a much longer text payload"
        assert tree.weight() == self.uncached_weight(tree)

    def test_append_invalidates_weight_and_size(self):
        tree = self.make_tree()
        w, s = tree.weight(), tree.size()
        tree.append(Element("note", text="late"))
        assert tree.size() == s + 1
        assert tree.weight() == self.uncached_weight(tree) and tree.weight() > w

    def test_deep_append_invalidates_root(self):
        tree = self.make_tree()
        tree.weight()
        tree.children[0].append(Element("nested"))
        assert tree.weight() == self.uncached_weight(tree)

    def test_copy_carries_cache_but_stays_independent(self):
        tree = self.make_tree()
        tree.weight()
        clone = tree.copy()
        assert clone.weight() == tree.weight()
        clone.children[0].set("id", "a-very-different-id")
        assert clone.weight() == self.uncached_weight(clone)
        assert tree.weight() == self.uncached_weight(tree)
        assert clone.weight() != tree.weight()

    def test_text_setter_invalidates(self):
        node = Element("n", text="short")
        before = node.weight()
        node.text = "a considerably longer text"
        assert node.weight() == self.uncached_weight(node)
        assert node.weight() != before

    def test_invalidate_caches_is_safe_on_fresh_nodes(self):
        node = Element("n")
        node.invalidate_caches()  # no caches yet: must be a no-op
        assert node.weight() == self.uncached_weight(node)


class TestSendMany:
    def build(self, fault_model=None, seed=9):
        network = SimNetwork(seed=seed, fault_model=fault_model)
        Peer("a", network)
        Peer("b", network)
        Peer("c", network)
        return network

    def payloads(self):
        return [Element("m", {"n": str(i)}, text="y" * i) for i in range(6)]

    def collect(self, network: SimNetwork):
        got: list[tuple[str, str, str]] = []
        for peer_id in ("b", "c"):
            peer = network.peer(peer_id)
            peer.register_handler(
                "t.msg",
                lambda m, pid=peer_id: got.append(
                    (pid, m.source, m.payload.attrib["n"])
                ),
            )
        return got

    def test_send_many_equals_send_loop(self):
        for fault_model in (
            None,
            FaultModel(loss_rate=0.2, duplication_rate=0.2, jitter=0.01),
        ):
            loop_net = self.build(fault_model)
            loop_got = self.collect(loop_net)
            for payload in self.payloads():
                for destination in ("b", "c"):
                    loop_net.send("a", destination, "t.msg", payload)
            loop_net.run()

            batch_net = self.build(fault_model)
            batch_got = self.collect(batch_net)
            sends = [
                (destination, "t.msg", payload)
                for payload in self.payloads()
                for destination in ("b", "c")
            ]
            batch_net.send_many("a", sends)
            batch_net.run()

            assert batch_got == loop_got
            assert (
                batch_net.stats.snapshot() == loop_net.stats.snapshot()
            )
            assert batch_net.stats.per_peer_sent == loop_net.stats.per_peer_sent

    def test_send_many_from_down_peer_drops_everything(self):
        network = self.build()
        got = self.collect(network)
        network.fail_peer("a")
        messages = network.send_many(
            "a", [("b", "t.msg", Element("m", {"n": "0"}))]
        )
        network.run()
        assert got == []
        assert len(messages) == 1
        assert network.messages_dropped_peer_down == 1

    def test_send_many_unknown_destination_raises(self):
        from repro.net.errors import UnknownPeerError

        network = self.build()
        with pytest.raises(UnknownPeerError):
            network.send_many("a", [("nobody", "t.msg", Element("m"))])


class TestChannelFanoutCache:
    def test_sorted_subscribers_cache_invalidation(self):
        network = SimNetwork(seed=1)
        publisher = Peer("pub", network)
        stream = publisher.create_stream("s")
        channel = publisher.publish_channel("ch", stream)
        subscriber_peers = [Peer(f"z{i}", network) for i in range(3)]
        for peer in subscriber_peers:
            peer.subscribe_channel("pub", "ch")
        network.run()
        assert channel.sorted_subscribers() == ("z0", "z1", "z2")
        subscriber_peers[1].channels.unsubscribe_remote("pub", "ch")
        network.run()
        assert channel.sorted_subscribers() == ("z0", "z2")
        channel.add_subscriber("aa")
        assert channel.sorted_subscribers() == ("aa", "z0", "z2")
        channel.remove_subscriber("aa")
        assert channel.sorted_subscribers() == ("z0", "z2")

    def test_fanout_delivers_equal_trees_to_every_subscriber(self):
        network = SimNetwork(seed=2)
        publisher = Peer("pub", network)
        stream = publisher.create_stream("s")
        publisher.publish_channel("ch", stream)
        sinks = {}
        for i in range(4):
            peer = Peer(f"r{i}", network)
            proxy = peer.subscribe_channel("pub", "ch")
            received = sinks[peer.peer_id] = []
            proxy.subscribe(received.append)
        network.run()
        item = Element("alert", {"n": "1"}, [Element("body", text="payload")])
        stream.emit(item)
        network.run()
        for received in sinks.values():
            assert len(received) == 1
            assert received[0] == item
            # the published item itself is never handed out: the fan-out
            # copies it once, so producer-side mutation cannot leak
            assert received[0] is not item

    def test_fanout_batch_keeps_per_subscriber_seq_dedup(self):
        network = SimNetwork(
            seed=4, fault_model=FaultModel(duplication_rate=0.5)
        )
        publisher = Peer("pub", network)
        stream = publisher.create_stream("s")
        publisher.publish_channel("ch", stream)
        peer = Peer("r", network)
        network.set_fault_model(None)
        proxy = peer.subscribe_channel("pub", "ch")
        network.run()
        network.set_fault_model(FaultModel(duplication_rate=0.5))
        received = []
        proxy.subscribe(received.append)
        items = [Element("alert", {"n": str(n)}) for n in range(40)]
        stream.emit_many(items)
        network.run()
        assert [item.attrib["n"] for item in received] == [
            str(n) for n in range(40)
        ]
        assert proxy.duplicates_dropped > 0
