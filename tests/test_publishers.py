"""Tests for the publishers."""

from repro.net import Peer, SimNetwork
from repro.publishers import (
    ChannelPublisher,
    EmailPublisher,
    FilePublisher,
    RSSPublisher,
    WebPagePublisher,
)
from repro.streams import Stream, collect
from repro.xmlmodel import Element, parse_xml


def incident(n: int) -> Element:
    return Element("incident", {"type": "slowAnswer", "n": str(n)})


class TestChannelPublisher:
    def test_republishes_on_a_channel(self):
        network = SimNetwork(seed=1)
        publisher_peer = Peer("pub.com", network)
        subscriber_peer = Peer("sub.com", network)
        results = Stream("results", "pub.com")
        publisher = ChannelPublisher(publisher_peer, "alertQoS")
        publisher.connect(results)
        proxy = subscriber_peer.subscribe_channel("pub.com", "alertQoS")
        network.run()
        sink = collect(proxy)
        results.emit(incident(1))
        network.run()
        assert len(sink) == 1
        assert publisher.items_published == 1

    def test_add_subscriber_and_close(self):
        network = SimNetwork(seed=1)
        publisher_peer = Peer("pub.com", network)
        Peer("client.com", network)
        results = Stream("results", "pub.com")
        publisher = ChannelPublisher(publisher_peer, "X")
        publisher.connect(results)
        publisher.add_subscriber("client.com")
        assert "client.com" in publisher.channel.subscribers
        results.close()
        assert publisher.closed
        assert publisher.relay.closed


class TestFilePublisher:
    def test_in_memory_document(self):
        results = Stream("r")
        publisher = FilePublisher()
        publisher.connect(results)
        results.emit(incident(1))
        results.emit(incident(2))
        assert len(publisher.document.children) == 2

    def test_writes_to_disk(self, tmp_path):
        path = tmp_path / "results.xml"
        results = Stream("r")
        publisher = FilePublisher(path)
        publisher.connect(results)
        results.emit(incident(1))
        results.close()
        reloaded = parse_xml(path.read_text())
        assert len(reloaded.children) == 1


class TestWebPagePublisher:
    def test_page_lists_latest_first(self):
        results = Stream("r")
        publisher = WebPagePublisher("QoS incidents", max_entries=2)
        publisher.connect(results)
        for n in range(3):
            results.emit(incident(n))
        page = publisher.page()
        items = page.find("body").find("ul").children
        assert len(items) == 2  # bounded
        assert items[0].find("incident").attrib["n"] == "2"  # newest first


class TestRSSPublisher:
    def test_feed_structure(self):
        results = Stream("r")
        publisher = RSSPublisher("alerts", max_items=10)
        publisher.connect(results)
        results.emit(incident(1))
        results.emit(incident(2))
        feed = publisher.feed()
        assert feed.tag == "rss"
        items = feed.find("channel").findall("item")
        assert len(items) == 2
        assert items[0].find("guid").text == "alerts-2"

    def test_bounded_items(self):
        results = Stream("r")
        publisher = RSSPublisher("alerts", max_items=3)
        publisher.connect(results)
        for n in range(10):
            results.emit(incident(n))
        assert len(publisher.feed().find("channel").findall("item")) == 3


class TestEmailPublisher:
    def test_outbox(self):
        results = Stream("r")
        publisher = EmailPublisher("ops@example.org")
        publisher.connect(results)
        results.emit(incident(1))
        assert len(publisher.outbox) == 1
        email = publisher.outbox[0]
        assert email.recipient == "ops@example.org"
        assert "incident" in email.subject
        assert "slowAnswer" in email.subject
        assert "slowAnswer" in email.body
