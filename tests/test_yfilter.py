"""Tests for the YFilter-style shared-prefix NFA."""

import pytest

from repro.filtering import YFilterSigma
from repro.xmlmodel import Element, parse_xml


@pytest.fixture
def soap_alert() -> Element:
    return parse_xml(
        """
        <alert callId="7" callMethod="GetTemperature">
          <soap>
            <envelope>
              <body><c><d>28</d></c></body>
            </envelope>
          </soap>
          <error code="none"/>
        </alert>
        """
    )


class TestStructuralMatching:
    def test_absolute_child_path(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q1", "/alert/soap/envelope")
        nfa.add_query("q2", "/alert/missing")
        assert nfa.match(soap_alert) == {"q1"}

    def test_descendant_paths(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("deep", "//c/d")
        nfa.add_query("anywhere", "//error")
        nfa.add_query("nothere", "//x/y")
        assert nfa.match(soap_alert) == {"deep", "anywhere"}

    def test_descendant_matches_root_itself(self):
        nfa = YFilterSigma()
        nfa.add_query("root", "//alert")
        assert nfa.match(Element("alert")) == {"root"}

    def test_wildcard_steps(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("w1", "/alert/*/envelope")
        nfa.add_query("w2", "/*/soap")
        nfa.add_query("w3", "/alert/*/*/body")
        assert nfa.match(soap_alert) == {"w1", "w2", "w3"}

    def test_descendant_after_descendant(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "//envelope//d")
        nfa.add_query("q2", "//d//envelope")
        assert nfa.match(soap_alert) == {"q"}

    def test_descendant_then_child(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "//body/c")
        nfa.add_query("bad", "//body/d")
        assert nfa.match(soap_alert) == {"q"}

    def test_mixed_child_descendant(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "/alert//body")
        assert nfa.match(soap_alert) == {"q"}

    def test_no_queries(self, soap_alert):
        assert YFilterSigma().match(soap_alert) == set()

    def test_duplicate_query_id_rejected(self):
        nfa = YFilterSigma()
        nfa.add_query("q", "//a")
        with pytest.raises(ValueError):
            nfa.add_query("q", "//b")


class TestPredicatesAndVerification:
    def test_attribute_predicate(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("match", "/alert[@callMethod = 'GetTemperature']")
        nfa.add_query("reject", "/alert[@callMethod = 'GetHumidity']")
        assert nfa.match(soap_alert) == {"match"}

    def test_attribute_final_step(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("has-code", "//error/@code")
        nfa.add_query("no-attr", "//soap/@missing")
        assert nfa.match(soap_alert) == {"has-code"}

    def test_text_final_step(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("text", "//d/text()")
        assert nfa.match(soap_alert) == {"text"}

    def test_predicate_with_path_condition(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "/alert[error]/soap")
        nfa.add_query("q2", "/alert[warning]/soap")
        assert nfa.match(soap_alert) == {"q"}

    def test_numeric_predicate(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "//d[text() >= 20]")
        nfa.add_query("q2", "//d[text() >= 99]")
        assert nfa.match(soap_alert) == {"q"}


class TestVirtualPruning:
    def test_only_active_queries_reported(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("a", "//c/d")
        nfa.add_query("b", "//error")
        assert nfa.match(soap_alert, active_queries={"a"}) == {"a"}
        assert nfa.match(soap_alert, active_queries={"b"}) == {"b"}
        assert nfa.match(soap_alert, active_queries=set()) == set()

    def test_active_set_with_nonmatching_query(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("nope", "//x/y/z")
        assert nfa.match(soap_alert, active_queries={"nope"}) == set()


class TestSharing:
    def test_shared_prefixes_create_fewer_states(self):
        shared = YFilterSigma()
        for i in range(50):
            shared.add_query(f"q{i}", f"/a/b/c/leaf{i}")
        unshared = YFilterSigma()
        for i in range(50):
            unshared.add_query(f"q{i}", f"/root{i}/b/c/leaf{i}")
        # 50 queries share the /a/b/c prefix: 3 + 50 states (+initial)
        assert shared.states_created < unshared.states_created

    def test_query_count_and_lookup(self):
        nfa = YFilterSigma()
        nfa.add_query("q", "//a")
        assert nfa.query_count == 1
        assert nfa.query("q").expression == "//a"

    def test_elements_processed_counter(self, soap_alert):
        nfa = YFilterSigma()
        nfa.add_query("q", "//d")
        nfa.match(soap_alert)
        assert nfa.elements_processed == soap_alert.size()
        nfa.reset_counters()
        assert nfa.elements_processed == 0

    def test_processing_stops_when_no_states_active(self):
        nfa = YFilterSigma()
        nfa.add_query("q", "/a/b")
        wide = Element("other", children=[Element("x", children=[Element("y")]) for _ in range(10)])
        nfa.match(wide)
        # root mismatch: children never visited
        assert nfa.elements_processed == 1


class TestAgreementWithXPath:
    @pytest.mark.parametrize(
        "query",
        [
            "/alert/soap",
            "//envelope/body",
            "//*/d",
            "/alert//c",
            "//body//d",
            "/alert/error",
            "//alert//soap//body",
            "/alert/*",
            "//d",
            "/soap",
            "//body/*",
        ],
    )
    def test_nfa_agrees_with_direct_xpath(self, query, soap_alert):
        from repro.xmlmodel import XPath

        nfa = YFilterSigma()
        nfa.add_query("q", query)
        expected = XPath.compile(query).matches(soap_alert)
        assert (nfa.match(soap_alert) == {"q"}) == expected
