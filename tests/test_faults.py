"""Tests for the network fault kernel: fault models, partitions, peer churn."""

import pytest

from repro.net import FaultModel, Peer, SimNetwork, UnknownPeerError
from repro.xmlmodel import Element


def make_network(n: int = 3, seed: int = 7, **kwargs) -> tuple[SimNetwork, list[Peer]]:
    network = SimNetwork(seed=seed, **kwargs)
    peers = [Peer(f"p{i}", network) for i in range(n)]
    return network, peers


def wire(peers: list[Peer], kind: str = "x") -> list:
    log: list = []
    for peer in peers:
        peer.register_handler(kind, lambda m, log=log: log.append(m))
    return log


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(duplication_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(jitter=-1)
        with pytest.raises(ValueError):
            FaultModel(bandwidth=0)

    def test_total_loss_drops_everything(self):
        network, peers = make_network(2, fault_model=FaultModel(loss_rate=1.0))
        log = wire(peers)
        for _ in range(10):
            peers[0].send("p1", "x", Element("a"))
        network.run()
        assert log == []
        assert network.messages_lost == 10

    def test_duplication_without_channel_layer_delivers_copies(self):
        network, peers = make_network(2, fault_model=FaultModel(duplication_rate=1.0))
        log = wire(peers)
        peers[0].send("p1", "x", Element("a"))
        network.run()
        assert len(log) == 2
        assert network.messages_duplicated == 1

    def test_bandwidth_delays_by_size(self):
        slow = FaultModel(bandwidth=10.0)
        network, peers = make_network(2, fault_model=slow)
        wire(peers)
        bulky = Element("data", {"k": "v" * 100})
        message = peers[0].send("p1", "x", bulky)
        plain_latency = network.latency("p0", "p1")
        assert message.deliver_at == pytest.approx(
            plain_latency + bulky.weight() / 10.0
        )

    def test_jitter_can_reorder(self):
        network, peers = make_network(2, seed=3, fault_model=FaultModel(jitter=10.0))
        order: list[str] = []
        peers[1].register_handler("x", lambda m: order.append(m.payload.tag))
        for tag in ("a", "b", "c", "d", "e", "f"):
            peers[0].send("p1", "x", Element(tag))
        network.run()
        assert sorted(order) == ["a", "b", "c", "d", "e", "f"]
        assert order != ["a", "b", "c", "d", "e", "f"]  # jitter reordered

    def test_set_fault_model_at_runtime(self):
        network, peers = make_network(2)
        log = wire(peers)
        peers[0].send("p1", "x", Element("a"))
        network.set_fault_model(FaultModel(loss_rate=1.0))
        peers[0].send("p1", "x", Element("b"))
        network.set_fault_model(None)
        peers[0].send("p1", "x", Element("c"))
        network.run()
        assert [m.payload.tag for m in log] == ["a", "c"]


class TestPartitions:
    def test_partition_holds_and_heal_releases(self):
        network, peers = make_network(3)
        log = wire(peers)
        network.partition("split", ["p0"], ["p1", "p2"])
        peers[0].send("p1", "x", Element("held"))
        peers[1].send("p2", "x", Element("free"))
        network.run()
        assert [m.payload.tag for m in log] == ["free"]
        assert network.held_messages == 1
        assert network.active_partitions == ["split"]
        released = network.heal("split")
        network.run()
        assert released == 1
        assert sorted(m.payload.tag for m in log) == ["free", "held"]
        assert network.held_messages == 0

    def test_heal_unknown_partition_is_noop(self):
        network, _ = make_network(2)
        assert network.heal("nope") == 0

    def test_duplicate_partition_name_rejected(self):
        network, _ = make_network(3)
        network.partition("a", ["p0"], ["p1"])
        with pytest.raises(ValueError):
            network.partition("a", ["p0"], ["p2"])

    def test_overlapping_groups_rejected(self):
        network, _ = make_network(3)
        with pytest.raises(ValueError):
            network.partition("a", ["p0", "p1"], ["p1", "p2"])

    def test_unnamed_peers_unaffected(self):
        network, peers = make_network(3)
        log = wire(peers)
        network.partition("split", ["p0"], ["p1"])
        peers[2].send("p0", "x", Element("a"))
        peers[2].send("p1", "x", Element("b"))
        network.run()
        assert len(log) == 2


class TestPeerLifecycle:
    def test_fail_and_revive(self):
        network, peers = make_network(2)
        log = wire(peers)
        assert network.fail_peer("p1") is True
        assert network.fail_peer("p1") is False  # already down
        assert not network.is_alive("p1")
        assert network.down_peers() == {"p1"}
        peers[0].send("p1", "x", Element("a"))
        network.run()
        assert log == []
        assert network.revive_peer("p1") is True
        assert network.revive_peer("p1") is False
        peers[0].send("p1", "x", Element("b"))
        network.run()
        assert [m.payload.tag for m in log] == ["b"]

    def test_send_from_down_peer_dropped(self):
        network, peers = make_network(2)
        log = wire(peers)
        network.fail_peer("p0")
        peers[0].send("p1", "x", Element("a"))
        network.run()
        assert log == []
        assert network.messages_dropped_peer_down == 1

    def test_revive_before_delivery_still_delivers(self):
        network, peers = make_network(2)
        log = wire(peers)
        peers[0].send("p1", "x", Element("a"))
        network.fail_peer("p1")
        network.revive_peer("p1")
        network.run()
        assert [m.payload.tag for m in log] == ["a"]

    def test_unknown_peer_rejected(self):
        network, _ = make_network(1)
        with pytest.raises(UnknownPeerError):
            network.fail_peer("ghost")
        with pytest.raises(UnknownPeerError):
            network.revive_peer("ghost")

    def test_lifecycle_listeners(self):
        network, _ = make_network(2)
        events: list[tuple[str, str]] = []
        unsubscribe = network.on_peer_down(lambda p: events.append(("down", p)))
        network.on_peer_up(lambda p: events.append(("up", p)))
        network.fail_peer("p0")
        network.revive_peer("p0")
        unsubscribe()
        network.fail_peer("p0")
        assert events == [("down", "p0"), ("up", "p0")]


class TestRngSplit:
    def test_registering_peer_mid_run_does_not_perturb_fault_draws(self):
        """The satellite bugfix: topology draws must not shift runtime draws."""

        def run(register_extra: bool) -> list[str]:
            network, peers = make_network(
                2, seed=13, fault_model=FaultModel(loss_rate=0.5)
            )
            delivered: list[str] = []
            peers[1].register_handler("x", lambda m: delivered.append(m.payload.tag))
            for i in range(10):
                peers[0].send("p1", "x", Element(f"t{i}"))
            if register_extra:
                Peer("latecomer", network)  # consumes topology_rng only
            for i in range(10, 20):
                peers[0].send("p1", "x", Element(f"t{i}"))
            network.run()
            return delivered

        assert run(register_extra=True) == run(register_extra=False)

    def test_legacy_random_alias_is_topology_rng(self):
        network = SimNetwork(seed=5)
        assert network.random is network.topology_rng


class TestEventLog:
    def test_log_disabled_by_default(self):
        network, peers = make_network(2)
        wire(peers)
        peers[0].send("p1", "x", Element("a"))
        network.run()
        assert network.event_log == []

    def test_log_is_deterministic(self):
        def run() -> tuple[list[str], str]:
            network, peers = make_network(3, seed=11, fault_model=FaultModel(loss_rate=0.3))
            network.record_events = True
            wire(peers)
            network.partition("cut", ["p0"], ["p2"])
            for i in range(8):
                peers[0].send(f"p{1 + i % 2}", "x", Element(f"t{i}"))
            network.fail_peer("p1")
            network.run()
            network.heal("cut")
            network.revive_peer("p1")
            network.run()
            return network.event_log, network.trace_fingerprint()

        first_log, first_print = run()
        second_log, second_print = run()
        assert first_log == second_log
        assert first_print == second_print
        assert any(event.split(" ", 1)[1].startswith("fail ") for event in first_log)
        assert any("heal" in event for event in first_log)


class TestHealWithDepartedPeers:
    def test_heal_drops_messages_for_unregistered_peers(self):
        network, peers = make_network(3)
        log = wire(peers)
        network.partition("cut", ["p0"], ["p1", "p2"])
        peers[0].send("p1", "x", Element("doomed"))
        peers[0].send("p2", "x", Element("fine"))
        network.unregister("p1")
        released = network.heal("cut")
        network.run()
        assert released == 2
        assert [m.payload.tag for m in log] == ["fine"]

    def test_heal_does_not_reapply_fault_model(self):
        """Held messages are delayed, never lost: a loss model must not eat them."""
        network, peers = make_network(2, fault_model=FaultModel(loss_rate=1.0))
        log = wire(peers)
        network.partition("cut", ["p0"], ["p1"])
        network.set_fault_model(FaultModel(loss_rate=1.0))
        for i in range(5):
            peers[0].send("p1", "x", Element(f"t{i}"))
        assert network.held_messages == 5
        network.heal("cut")
        network.run()
        assert len(log) == 5  # all held messages delivered despite loss_rate=1
