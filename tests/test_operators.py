"""Tests for the runtime stream operators."""

import pytest

from repro.algebra import (
    DuplicateRemovalOperator,
    FilterProcessor,
    GroupOperator,
    JoinOperator,
    RestructureOperator,
    RestructureTemplate,
    UnionOperator,
    ValueRef,
    get_binding,
)
from repro.filtering import FilterSubscription, SimpleCondition
from repro.streams import Stream, collect
from repro.xmlmodel import Element, XPath


def alert(**attrs) -> Element:
    return Element("alert", attrs)


class TestOperatorBase:
    def test_eos_propagates_when_all_inputs_close(self):
        left, right = Stream("l"), Stream("r")
        union = UnionOperator()
        union.connect(left).connect(right)
        left.close()
        assert not union.output.closed
        right.close()
        assert union.output.closed

    def test_counters(self):
        source = Stream("s")
        union = UnionOperator()
        union.connect(source)
        source.emit(alert())
        assert union.items_in == 1
        assert union.items_out == 1
        assert "in=1" in repr(union)


class TestFilterProcessor:
    def test_forwards_only_matching_items(self):
        source = Stream("s")
        subscription = FilterSubscription(
            "slow", [SimpleCondition("duration", ">", "10")]
        )
        processor = FilterProcessor(subscription)
        processor.connect(source)
        sink = collect(processor.output)
        source.emit(alert(duration="5"))
        source.emit(alert(duration="15"))
        source.emit(alert(duration="30"))
        assert [item.attrib["duration"] for item in sink] == ["15", "30"]

    def test_complex_condition(self):
        source = Stream("s")
        subscription = FilterSubscription(
            "deep", [], [XPath.compile("//c/d")]
        )
        processor = FilterProcessor(subscription)
        processor.connect(source)
        sink = collect(processor.output)
        source.emit(Element("alert", children=[Element("c", children=[Element("d")])]))
        source.emit(Element("alert", children=[Element("c")]))
        assert len(sink) == 1


class TestUnion:
    def test_merges_streams(self):
        a, b, c = Stream("a"), Stream("b"), Stream("c")
        union = UnionOperator()
        for stream in (a, b, c):
            union.connect(stream)
        sink = collect(union.output)
        a.emit(alert(src="a"))
        b.emit(alert(src="b"))
        c.emit(alert(src="c"))
        a.emit(alert(src="a2"))
        assert [item.attrib["src"] for item in sink] == ["a", "b", "c", "a2"]


class TestRestructure:
    def test_applies_template(self):
        source = Stream("s")
        template = RestructureTemplate(
            Element("incident", {"type": "slowAnswer"}, [Element("client", text="{$c1.caller}")])
        )
        restructure = RestructureOperator(template, default_var="c1")
        restructure.connect(source)
        sink = collect(restructure.output)
        source.emit(alert(caller="http://a.com"))
        assert sink[0].tag == "incident"
        assert sink[0].find("client").text == "http://a.com"


class TestJoin:
    def make_join(self, window=None) -> tuple[Stream, Stream, JoinOperator, list]:
        left, right = Stream("out-calls"), Stream("in-calls")
        join = JoinOperator(
            left_var="c1",
            right_var="c2",
            predicate=[(ValueRef.attribute("c1", "callId"), ValueRef.attribute("c2", "callId"))],
            window=window,
        )
        join.connect(left).connect(right)
        sink = collect(join.output)
        return left, right, join, sink

    def test_matching_pairs_joined(self):
        left, right, join, sink = self.make_join()
        left.emit(alert(callId="1", caller="a.com"))
        right.emit(alert(callId="2", server="meteo"))
        assert sink == []
        right.emit(alert(callId="1", server="meteo"))
        assert len(sink) == 1
        binding = get_binding(sink[0])
        assert binding["c1"].attrib["caller"] == "a.com"
        assert binding["c2"].attrib["server"] == "meteo"

    def test_join_is_symmetric(self):
        left, right, join, sink = self.make_join()
        right.emit(alert(callId="9", side="right"))
        left.emit(alert(callId="9", side="left"))
        assert len(sink) == 1

    def test_multiple_matches_in_history(self):
        left, right, join, sink = self.make_join()
        left.emit(alert(callId="1", n="first"))
        left.emit(alert(callId="1", n="second"))
        right.emit(alert(callId="1"))
        assert len(sink) == 2

    def test_items_missing_key_are_ignored(self):
        left, right, join, sink = self.make_join()
        left.emit(alert(other="x"))
        right.emit(alert(callId="1"))
        assert sink == []

    def test_multi_key_predicate(self):
        left, right = Stream("l"), Stream("r")
        join = JoinOperator(
            "a",
            "b",
            predicate=[
                (ValueRef.attribute("a", "callId"), ValueRef.attribute("b", "callId")),
                (ValueRef.attribute("a", "method"), ValueRef.attribute("b", "method")),
            ],
        )
        join.connect(left).connect(right)
        sink = collect(join.output)
        left.emit(alert(callId="1", method="GetTemperature"))
        right.emit(alert(callId="1", method="GetHumidity"))
        assert sink == []
        right.emit(alert(callId="1", method="GetTemperature"))
        assert len(sink) == 1

    def test_window_bounds_history(self):
        left, right, join, sink = self.make_join(window=2)
        left.emit(alert(callId="1"))
        left.emit(alert(callId="2"))
        left.emit(alert(callId="3"))  # evicts callId=1
        assert join.history_size(0) == 2
        right.emit(alert(callId="1"))
        assert sink == []
        right.emit(alert(callId="3"))
        assert len(sink) == 1

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            JoinOperator("a", "b", predicate=[])

    def test_third_input_rejected(self):
        left, right, join, sink = self.make_join()
        extra = Stream("extra")
        join.connect(extra)
        with pytest.raises(ValueError):
            extra.emit(alert(callId="1"))

    def test_join_of_join_output_merges_bindings(self):
        left, right, first_join, first_sink = self.make_join()
        third = Stream("third")
        # the first join's output is a binding tuple, so the second join's
        # predicate refers to the original variable $c1 directly
        second_join = JoinOperator(
            "pair",
            "c3",
            predicate=[(ValueRef.attribute("c1", "callId"),
                        ValueRef.attribute("c3", "callId"))],
        )
        second_join.connect(first_join.output).connect(third)
        sink = collect(second_join.output)
        left.emit(alert(callId="5", caller="a.com"))
        right.emit(alert(callId="5", server="m"))
        third.emit(alert(callId="5", extra="yes"))
        assert len(sink) == 1
        binding = get_binding(sink[0])
        assert set(binding) == {"c1", "c2", "c3"}


class TestDuplicateRemoval:
    def test_structural_dedup(self):
        source = Stream("s")
        dedup = DuplicateRemovalOperator()
        dedup.connect(source)
        sink = collect(dedup.output)
        source.emit(alert(x="1"))
        source.emit(alert(x="1"))
        source.emit(alert(x="2"))
        assert len(sink) == 2
        assert dedup.distinct_count == 2

    def test_custom_criterion(self):
        source = Stream("s")
        dedup = DuplicateRemovalOperator(criterion=lambda item: item.attrib.get("key"))
        dedup.connect(source)
        sink = collect(dedup.output)
        source.emit(alert(key="a", payload="1"))
        source.emit(alert(key="a", payload="2"))
        assert len(sink) == 1


class TestGroup:
    def test_counts_by_key_and_emits_on_close(self):
        source = Stream("s")
        group = GroupOperator(key=ValueRef.attribute("item", "peer"))
        group.connect(source)
        sink = collect(group.output)
        source.emit(alert(peer="a"))
        source.emit(alert(peer="a"))
        source.emit(alert(peer="b"))
        assert sink == []
        source.close()
        assert len(sink) == 1
        snapshot = sink[0]
        assert snapshot.attrib["total"] == "3"
        counts = {g.attrib["key"]: g.attrib["count"] for g in snapshot.children}
        assert counts == {"a": "2", "b": "1"}

    def test_periodic_emission(self):
        source = Stream("s")
        group = GroupOperator(key=lambda item: item.attrib.get("peer"), every=2)
        group.connect(source)
        sink = collect(group.output)
        for i in range(4):
            source.emit(alert(peer=f"p{i % 2}"))
        assert len(sink) == 2

    def test_missing_key_grouped_as_none(self):
        source = Stream("s")
        group = GroupOperator(key=ValueRef.attribute("item", "peer"))
        group.connect(source)
        source.emit(alert(other="x"))
        source.close()
        assert group.counts == {"(none)": 1}
