"""Tests for the XML parser and serialiser (round-trips, error handling)."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlmodel import Element, XMLParseError, parse_xml, pretty_xml, to_xml


class TestParseBasics:
    def test_single_empty_element(self):
        root = parse_xml("<a/>")
        assert root.tag == "a"
        assert root.children == []
        assert root.text is None

    def test_attributes_double_and_single_quotes(self):
        root = parse_xml("""<a x="1" y='two'/>""")
        assert root.attrib == {"x": "1", "y": "two"}

    def test_nested_children_and_text(self):
        root = parse_xml("<a><b>hello</b><c/></a>")
        assert [c.tag for c in root.children] == ["b", "c"]
        assert root.find("b").text == "hello"

    def test_whitespace_only_text_dropped(self):
        root = parse_xml("<a>\n  <b/>\n</a>")
        assert root.text is None

    def test_xml_declaration_and_comments_skipped(self):
        root = parse_xml('<?xml version="1.0"?><!-- hi --><a><!-- inner --><b/></a>')
        assert root.tag == "a"
        assert len(root.children) == 1

    def test_doctype_skipped(self):
        root = parse_xml("<!DOCTYPE html><a/>")
        assert root.tag == "a"

    def test_cdata(self):
        root = parse_xml("<a><![CDATA[1 < 2 & 3 > 2]]></a>")
        assert root.text == "1 < 2 & 3 > 2"

    def test_entities(self):
        root = parse_xml("<a x=\"&lt;&amp;&gt;\">&quot;&apos;&#65;&#x42;</a>")
        assert root.attrib["x"] == "<&>"
        assert root.text == "\"'AB"

    def test_paper_example_stream_item(self):
        source = (
            '<root attr1="x" attr2="y">'
            '<sc service="storage" address="site"><parameters/></sc>'
            "</root>"
        )
        root = parse_xml(source)
        assert root.attrib == {"attr1": "x", "attr2": "y"}
        sc = root.find("sc")
        assert sc.attrib["service"] == "storage"


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x='1'",
            "<a/><b/>",
            "<a>&unknown;</a>",
            "<a><!-- unterminated</a>",
            "<a><![CDATA[unterminated</a>",
        ],
    )
    def test_malformed_inputs_raise(self, source):
        with pytest.raises(XMLParseError):
            parse_xml(source)

    def test_error_reports_line_and_column(self):
        with pytest.raises(XMLParseError) as err:
            parse_xml("<a>\n<b></c>\n</a>")
        assert "line 2" in str(err.value)

    def test_non_string_input(self):
        with pytest.raises(TypeError):
            parse_xml(b"<a/>")  # type: ignore[arg-type]


class TestSerialize:
    def test_roundtrip_simple(self):
        root = parse_xml('<a x="1"><b>text</b><c/></a>')
        assert parse_xml(to_xml(root)) == root

    def test_escaping_in_attributes_and_text(self):
        node = Element("a", {"x": 'va"l<ue&'}, text="a<b&c>d")
        assert parse_xml(to_xml(node)) == node

    def test_pretty_contains_newlines(self):
        root = parse_xml("<a><b/><c/></a>")
        pretty = pretty_xml(root)
        assert pretty.count("\n") >= 3
        assert parse_xml(pretty) == root

    def test_self_closing_for_empty(self):
        assert to_xml(Element("a")) == "<a/>"


# --------------------------------------------------------------------------- #
# Property-based round-trip: arbitrary trees survive serialise -> parse.
# --------------------------------------------------------------------------- #

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu"), max_codepoint=127),
    min_size=1,
    max_size=8,
)
_texts = st.text(
    alphabet=st.characters(
        blacklist_characters="\r", min_codepoint=32, max_codepoint=126
    ),
    min_size=1,
    max_size=20,
).map(str.strip).filter(bool)


@st.composite
def _elements(draw, depth=2):
    tag = draw(_names)
    attrs = draw(
        st.dictionaries(_names, _texts, max_size=3)
    )
    text = draw(st.none() | _texts)
    children = []
    if depth > 0:
        children = draw(st.lists(_elements(depth=depth - 1), max_size=3))
    return Element(tag, attrs, children, text)


@given(_elements())
def test_roundtrip_property(tree):
    assert parse_xml(to_xml(tree)) == tree
    assert parse_xml(pretty_xml(tree)) == tree
