"""Pluggable publisher/alerter registries: new kinds without touching deployment."""

import pytest

from repro.alerters import (
    Alerter,
    alerter_functions,
    create_alerter,
    register_alerter,
    unregister_alerter,
)
from repro.monitor import P2PMSystem
from repro.p2pml import SubscriptionBuilder
from repro.publishers import (
    Publisher,
    publisher_modes,
    register_publisher,
    unregister_publisher,
)
from repro.xmlmodel.tree import Element


class TemperatureAlerter(Alerter):
    """A plug-in alerter: emits one alert per recorded reading."""

    kind = "tempSensor"

    def record(self, celsius: float) -> None:
        self.emit_alert(Element("alert", {"celsius": str(celsius), "peer": self.peer_id}))


class WebhookPublisher(Publisher):
    """A plug-in publication mode: collects what would be POSTed."""

    mode = "webhook"

    def __init__(self, url: str) -> None:
        super().__init__()
        self.url = url
        self.posted: list[Element] = []

    def publish(self, item: Element) -> None:
        self.posted.append(item)


@pytest.fixture
def temp_sensor_registration():
    register_alerter("tempSensor")(lambda peer, function: TemperatureAlerter(peer.peer_id))
    yield
    unregister_alerter("tempSensor")


@pytest.fixture
def webhook_registration():
    register_publisher("webhook")(lambda ctx: WebhookPublisher(ctx.params["target"]))
    yield
    unregister_publisher("webhook")


class TestAlerterRegistry:
    def test_builtin_functions_registered(self):
        assert {"inCOM", "outCOM", "rssFeed", "webPage", "axmlRepo", "areRegistered"} <= set(
            alerter_functions()
        )

    def test_unknown_function_lists_known_ones(self):
        system = P2PMSystem(seed=1)
        peer = system.add_peer("p1")
        with pytest.raises(ValueError, match="inCOM"):
            create_alerter(peer, "noSuchAlerter")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_alerter("inCOM")(lambda peer, function: None)

    def test_plugin_alerter_deploys_from_p2pml_text(self, temp_sensor_registration):
        system = P2PMSystem(seed=2)
        sensor_peer = system.add_peer("sensor.example")
        monitor = system.add_peer("monitor.example")
        handle = monitor.subscribe(
            """
            for $t in tempSensor(<p>sensor.example</p>)
            where $t.celsius > 30
            return <heat celsius="{$t.celsius}"/>
            """,
            sub_id="heat-watch",
            max_results=100,
        )
        system.run()
        alerter = sensor_peer.alerter("tempSensor")
        assert isinstance(alerter, TemperatureAlerter)
        for reading in (12.0, 31.5, 48.0, 22.0):
            alerter.record(reading)
        system.run()
        assert [e.attrib["celsius"] for e in handle.results()] == ["31.5", "48.0"]
        handle.cancel()
        assert len(system.resources) == 0


class TestPublisherRegistry:
    def test_builtin_modes_registered(self):
        assert {"channel", "email", "file", "rss", "webpage"} <= set(publisher_modes())

    def test_unknown_mode_raises_with_catalogue(self):
        system = P2PMSystem(seed=3)
        feeds = system.add_peer("feeds.example")
        feeds.register_feed("http://feeds.example/rss", lambda: Element("rss"))
        monitor = system.add_peer("watcher.example")
        ast = (
            SubscriptionBuilder()
            .for_var("x", "rssFeed", "feeds.example")
            .returns("$x")
            .by("carrier-pigeon", "coop@roof")
            .build()
        )
        with pytest.raises(ValueError, match="unknown publication mode"):
            monitor.subscribe(ast)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_publisher("email")(lambda ctx: None)

    def test_plugin_publisher_deploys_and_cancels(
        self, temp_sensor_registration, webhook_registration
    ):
        system = P2PMSystem(seed=4)
        sensor_peer = system.add_peer("sensor.example")
        monitor = system.add_peer("monitor.example")
        handle = monitor.subscribe(
            SubscriptionBuilder()
            .for_var("t", "tempSensor", "sensor.example")
            .where("$t.celsius", ">", 30)
            .returns('<heat celsius="{$t.celsius}"/>')
            .by("webhook", "https://ops.example/hooks/heat"),
            sub_id="heat-hook",
        )
        system.run()
        assert isinstance(handle.publisher, WebhookPublisher)
        assert handle.publisher.url == "https://ops.example/hooks/heat"
        alerter = sensor_peer.alerter("tempSensor")
        alerter.record(35.0)
        system.run()
        assert len(handle.publisher.posted) == 1
        handle.cancel()
        alerter.record(40.0)
        system.run()
        assert len(handle.publisher.posted) == 1
        assert len(system.resources) == 0
