"""Tests for the XPath subset engine."""

import pytest

from repro.xmlmodel import Element, XPath, XPathError, parse_xml, xpath_matches, xpath_select


@pytest.fixture
def stream_db_entry() -> Element:
    return parse_xml(
        """
        <Stream PeerId="p1" StreamId="s3" isAChannel="true">
          <Operator><Filter/></Operator>
          <Operands>
            <Operand OPeerId="p1" OStreamId="s1"/>
          </Operands>
          <Stats avgVolume="120"/>
        </Stream>
        """
    )


@pytest.fixture
def alert() -> Element:
    return parse_xml(
        """
        <alert callMethod="GetTemperature" callee="http://meteo.com" callId="9">
          <soap><body><c><d>payload</d></c></body></soap>
        </alert>
        """
    )


class TestCompile:
    def test_simple_absolute(self):
        path = XPath.compile("/Stream/Operator")
        assert path.absolute
        assert [s.test for s in path.steps] == ["Stream", "Operator"]
        assert [s.axis for s in path.steps] == ["child", "child"]

    def test_descendant_axis(self):
        path = XPath.compile("//a//b")
        assert [s.axis for s in path.steps] == ["descendant", "descendant"]

    def test_variable_prefix(self):
        path = XPath.compile("$c1/alert[@callMethod = 'GetTemperature']")
        assert path.variable == "c1"
        assert path.steps[0].test == "alert"
        assert len(path.steps[0].predicates) == 1

    def test_is_linear(self):
        assert XPath.compile("//a/b/c").is_linear()
        assert not XPath.compile("/a[@x='1']").is_linear()

    @pytest.mark.parametrize("bad", ["", "   ", "/a[", "/a[@x=]", "/a]", "/", "a/[x]"])
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathError):
            XPath.compile(bad)

    def test_equality_and_hash(self):
        assert XPath.compile("/a/b") == XPath.compile("/a/b")
        assert XPath.compile("/a/b") != XPath.compile("/a//b")
        assert hash(XPath.compile("//x")) == hash(XPath.compile("//x"))


class TestSelect:
    def test_absolute_child_path(self, stream_db_entry):
        results = xpath_select("/Stream/Operands/Operand", stream_db_entry)
        assert len(results) == 1
        assert results[0].attrib["OPeerId"] == "p1"

    def test_root_name_mismatch(self, stream_db_entry):
        assert xpath_select("/Other/Operator", stream_db_entry) == []

    def test_descendant_search(self, alert):
        results = xpath_select("//d", alert)
        assert len(results) == 1
        assert results[0].text == "payload"

    def test_wildcard(self, stream_db_entry):
        results = xpath_select("/Stream/*", stream_db_entry)
        assert [r.tag for r in results] == ["Operator", "Operands", "Stats"]

    def test_attribute_selection(self, stream_db_entry):
        results = xpath_select("/Stream/Stats/@avgVolume", stream_db_entry)
        assert results == ["120"]

    def test_text_selection(self, alert):
        assert xpath_select("//d/text()", alert) == ["payload"]

    def test_first_and_matches(self, alert):
        path = XPath.compile("//c/d")
        assert path.matches(alert)
        assert path.first(alert).text == "payload"
        assert XPath.compile("//nothing").first(alert) is None


class TestPredicates:
    def test_attribute_equality(self, stream_db_entry):
        assert xpath_matches("/Stream[@PeerId = 'p1']", stream_db_entry)
        assert not xpath_matches("/Stream[@PeerId = 'p2']", stream_db_entry)

    def test_existence_predicate(self, stream_db_entry):
        assert xpath_matches("/Stream[Operator/Filter]", stream_db_entry)
        assert not xpath_matches("/Stream[Operator/Join]", stream_db_entry)

    def test_multiple_predicates_conjunction(self, stream_db_entry):
        query = (
            "/Stream[Operator/Filter]"
            "[Operands/Operand[@OPeerId='p1'][@OStreamId='s1']]"
        )
        assert xpath_matches(query, stream_db_entry)
        wrong = (
            "/Stream[Operator/Filter]"
            "[Operands/Operand[@OPeerId='p1'][@OStreamId='s9']]"
        )
        assert not xpath_matches(wrong, stream_db_entry)

    def test_numeric_comparison(self, stream_db_entry):
        assert xpath_matches("/Stream/Stats[@avgVolume > 100]", stream_db_entry)
        assert not xpath_matches("/Stream/Stats[@avgVolume > 200]", stream_db_entry)
        assert xpath_matches("/Stream/Stats[@avgVolume <= 120]", stream_db_entry)

    def test_and_or_inside_predicate(self, stream_db_entry):
        assert xpath_matches(
            "/Stream[@PeerId='p1' and @StreamId='s3']", stream_db_entry
        )
        assert xpath_matches(
            "/Stream[@PeerId='zzz' or @StreamId='s3']", stream_db_entry
        )
        assert not xpath_matches(
            "/Stream[@PeerId='zzz' and @StreamId='s3']", stream_db_entry
        )

    def test_not_equal(self, stream_db_entry):
        assert xpath_matches("/Stream[@PeerId != 'p9']", stream_db_entry)

    def test_text_predicate(self):
        doc = parse_xml("<feed><entry><title>news</title></entry></feed>")
        assert xpath_matches("/feed/entry[title = 'news']", doc)
        assert not xpath_matches("/feed/entry[title = 'other']", doc)

    def test_paper_filter_query(self, alert):
        # the complex part of "$item.attr1=... and $item//c/d"
        assert xpath_matches("//c/d", alert)


class TestRelativeEvaluation:
    def test_variable_path_relative_to_item(self, alert):
        # $c1/alert[...] where $c1 is bound to the alert item itself
        path = XPath.compile("$c1/alert[@callMethod = 'GetTemperature']")
        # absolute-style evaluation: first step matches the item root
        assert path.matches(alert)

    def test_relative_path_from_context(self, alert):
        path = XPath.compile("soap/body")
        results = path.select(alert, relative=True)
        assert len(results) == 1
        assert results[0].tag == "body"
