"""Tests for plan nodes, signatures and rewriting rules."""

import pytest

from repro.algebra import PlanNode, plan_signature, push_selections_down
from repro.algebra.expr import ANY, Doc, Eval, Label, Receive, Send, Service, Var, generic_services
from repro.algebra.plan import ALERTER, FILTER, JOIN, PUBLISH, RESTRUCTURE, UNION
from repro.algebra.rewrite import rewrite_external_invocation, rewrite_local_invocation
from repro.algebra.template import RestructureTemplate
from repro.filtering import FilterSubscription, SimpleCondition
from repro.xmlmodel import Element


def alerter(peer: str, kind: str = "outCOM", var: str = "c1") -> PlanNode:
    return PlanNode(ALERTER, {"alerter": kind, "peer": peer, "var": var}, placement=peer)


def filter_node(child: PlanNode, var="c1", attr="callMethod", value="GetTemperature") -> PlanNode:
    subscription = FilterSubscription(
        f"f-{var}", [SimpleCondition(attr, "=", value)]
    )
    return PlanNode(FILTER, {"subscription": subscription, "var": var}, [child])


def meteo_plan() -> PlanNode:
    """The canonical (un-pushed) plan for the Figure 1 subscription."""
    union = PlanNode(UNION, {}, [alerter("a.com"), alerter("b.com")])
    filtered_union = filter_node(union, var="c1")
    server = filter_node(alerter("meteo.com", "inCOM", "c2"), var="c2")
    join = PlanNode(
        JOIN,
        {"left_var": "c1", "right_var": "c2", "predicate": [("$c1.callId", "$c2.callId")]},
        [filtered_union, server],
    )
    restructure = PlanNode(
        RESTRUCTURE,
        {"template": RestructureTemplate(Element("incident", {"type": "slowAnswer"}))},
        [join],
    )
    return PlanNode(PUBLISH, {"mode": "channel", "target": "alertQoS"}, [restructure])


class TestPlanNode:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            PlanNode("bogus")

    def test_iteration_is_postorder(self):
        plan = meteo_plan()
        kinds = [node.kind for node in plan.iter_nodes()]
        assert kinds[-1] == PUBLISH
        assert kinds[0] == ALERTER

    def test_counts_and_find(self):
        plan = meteo_plan()
        assert plan.count(ALERTER) == 3
        assert plan.count(FILTER) == 2
        assert plan.count() == len(list(plan.iter_nodes()))
        assert len(plan.find_all(JOIN)) == 1
        assert len(plan.leaves()) == 3

    def test_copy_is_deep(self):
        plan = meteo_plan()
        clone = plan.copy()
        clone.children[0].params["extra"] = True
        assert "extra" not in plan.children[0].params

    def test_placement_tracking(self):
        plan = meteo_plan()
        unplaced = plan.unplaced_nodes()
        assert all(node.kind != ALERTER for node in unplaced)  # alerters are placed
        assert len(unplaced) > 0
        for node in plan.iter_nodes():
            node.placement = node.placement or "p"
        assert plan.unplaced_nodes() == []
        assert plan.is_placed

    def test_describe_mentions_operators_and_placement(self):
        text = meteo_plan().describe()
        assert "publish" in text
        assert "@a.com" in text
        assert "@any" in text


class TestPlanSignature:
    def test_identical_plans_share_signature(self):
        assert plan_signature(meteo_plan()) == plan_signature(meteo_plan())

    def test_signature_distinguishes_different_filters(self):
        a = filter_node(alerter("a.com"), value="GetTemperature")
        b = filter_node(alerter("a.com"), value="GetHumidity")
        assert plan_signature(a) != plan_signature(b)

    def test_signature_distinguishes_peers(self):
        assert plan_signature(alerter("a.com")) != plan_signature(alerter("b.com"))

    def test_signature_ignores_placement(self):
        one = filter_node(alerter("a.com"))
        other = filter_node(alerter("a.com"))
        other.placement = "elsewhere.com"
        assert plan_signature(one) == plan_signature(other)


class TestPushSelectionsDown:
    def test_filter_pushed_through_union(self):
        plan = filter_node(PlanNode(UNION, {}, [alerter("a.com"), alerter("b.com")]))
        pushed = push_selections_down(plan)
        assert pushed.kind == UNION
        assert all(child.kind == FILTER for child in pushed.children)
        assert all(child.children[0].kind == ALERTER for child in pushed.children)

    def test_filter_pushed_to_join_side(self):
        join = PlanNode(
            JOIN,
            {"left_var": "c1", "right_var": "c2", "predicate": []},
            [alerter("a.com", var="c1"), alerter("meteo.com", "inCOM", "c2")],
        )
        plan = filter_node(join, var="c2")
        pushed = push_selections_down(plan)
        assert pushed.kind == JOIN
        assert pushed.children[0].kind == ALERTER
        assert pushed.children[1].kind == FILTER

    def test_filter_not_referencing_one_side_stays_put(self):
        join = PlanNode(
            JOIN,
            {"left_var": "c1", "right_var": "c2", "predicate": []},
            [alerter("a.com", var="c1"), alerter("b.com", var="c2")],
        )
        plan = PlanNode(FILTER, {"subscription": FilterSubscription("f", []), "var": None}, [join])
        pushed = push_selections_down(plan)
        assert pushed.kind == FILTER

    def test_full_meteo_plan_pushdown(self):
        plan = meteo_plan()
        pushed = push_selections_down(plan)
        # after pushing, the union's children are filters over the alerters
        union = pushed.find_all(UNION)[0]
        assert all(child.kind == FILTER for child in union.children)
        # original plan untouched
        assert meteo_plan().find_all(UNION)[0].children[0].kind == ALERTER

    def test_push_preserves_node_count_semantics(self):
        plan = meteo_plan()
        pushed = push_selections_down(plan)
        assert pushed.count(ALERTER) == plan.count(ALERTER)
        assert pushed.count(FILTER) == plan.count(FILTER) + 1  # filter duplicated over union


class TestSymbolicAlgebra:
    def test_notation(self):
        expr = Eval(
            "p",
            Service("publisher", "p", [Service("filter", ANY, [Doc("out", "a.com")])]),
        )
        text = str(expr)
        assert "eval@p" in text
        assert "filter@any" in text
        assert "out@a.com" in text

    def test_generic_services_detection(self):
        service = Service("sigma", ANY, [Service("inner", "q")])
        assert generic_services(service) == [service]
        concrete = service.at("p1")
        assert concrete.peer == "p1"
        assert generic_services(concrete) == []

    def test_label_and_var_notation(self):
        label = Label("result", [Var("x"), Var("M", "p", is_node=True)])
        assert str(label) == "result<$x, #M@p>"

    def test_local_invocation_rule(self):
        expr = Eval("p", Service("s", "p", [Doc("d", "p")]))
        rewritten = rewrite_local_invocation(expr)
        assert isinstance(rewritten, Service)
        assert rewritten.state == "executing"
        assert isinstance(rewritten.args[0], Eval)
        assert "°s@p(eval@p(d@p))" == str(rewritten)

    def test_local_invocation_rejects_remote_service(self):
        with pytest.raises(ValueError):
            rewrite_local_invocation(Eval("p", Service("s", "q")))
        with pytest.raises(ValueError):
            rewrite_local_invocation(Eval("p", Doc("d", "p")))

    def test_external_invocation_rule(self):
        node = Var("x", "p", is_node=True)
        expr = Eval("p", Service("s", "q", [Doc("d", "q")]))
        actions = rewrite_external_invocation(node, expr)
        assert len(actions) == 2
        receiver, sender = actions
        assert receiver.peer == "p"
        assert isinstance(receiver.expr, Receive)
        assert sender.peer == "q"
        assert isinstance(sender.expr, Eval)
        assert isinstance(sender.expr.expr, Send)
        assert "#x@p" in str(sender.expr)

    def test_external_invocation_rejects_local_service(self):
        node = Var("x", "p", is_node=True)
        with pytest.raises(ValueError):
            rewrite_external_invocation(node, Eval("p", Service("s", "p")))
        with pytest.raises(ValueError):
            rewrite_external_invocation(Var("x"), Eval("p", Service("s", "q")))
