"""Tests for the P2PML-to-plan compiler."""

import pytest

from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    FILTER,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
)
from repro.p2pml import P2PMLCompileError, compile_text, parse_subscription, compile_subscription

METEO = """
for $c1 in outCOM(<p>a.com</p> <p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where
    $duration > 10 and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "http://meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type="slowAnswer">
        <client>{$c1.caller}</client>
        <tstamp>{$c2.callTimestamp}</tstamp>
    </incident>
by publish as channel "alertQoS";
"""


class TestMeteoPlan:
    def test_overall_shape(self):
        plan = compile_text(METEO, "meteo-qos")
        assert plan.kind == PUBLISH
        assert plan.params["mode"] == "channel"
        assert plan.params["target"] == "alertQoS"
        restructure = plan.children[0]
        assert restructure.kind == RESTRUCTURE
        join = restructure.children[0]
        assert join.kind == JOIN
        assert join.params["right_var"] == "c2"
        assert len(join.params["predicate"]) == 1

    def test_alerters_and_union(self):
        plan = compile_text(METEO, "meteo-qos")
        assert plan.count(ALERTER) == 3
        union = plan.find_all(UNION)
        assert len(union) == 1
        assert {child.params["peer"] for child in union[0].children} == {"a.com", "b.com"}
        alerter_kinds = {node.params["alerter"] for node in plan.find_all(ALERTER)}
        assert alerter_kinds == {"outCOM", "inCOM"}

    def test_alerters_are_placed_at_their_peers(self):
        plan = compile_text(METEO, "meteo-qos")
        for alerter in plan.find_all(ALERTER):
            assert alerter.placement == alerter.params["peer"]

    def test_per_variable_filters(self):
        plan = compile_text(METEO, "meteo-qos")
        filters = plan.find_all(FILTER)
        # only $c1 carries local conditions; $c2 is joined unfiltered
        assert len(filters) == 1
        c1 = filters[0].params["subscription"]
        assert filters[0].params["var"] == "c1"
        # two simple conditions plus the LET-derived computed one
        assert len(c1.simple) == 2
        assert len(c1.computed) == 1
        assert c1.computed[0].op == ">"
        assert c1.computed[0].value == 10.0

    def test_join_predicate_refs(self):
        plan = compile_text(METEO, "meteo-qos")
        join = plan.find_all(JOIN)[0]
        (left_ref, right_ref), = join.params["predicate"]
        assert str(left_ref) == "$c1.callId"
        assert str(right_ref) == "$c2.callId"

    def test_template_variables(self):
        plan = compile_text(METEO, "meteo-qos")
        template = plan.find_all(RESTRUCTURE)[0].params["template"]
        assert template.variables() == {"c1", "c2"}


class TestSingleSourceSubscriptions:
    def test_single_peer_no_union(self):
        plan = compile_text(
            'for $e in inCOM(<p>meteo.com</p>) where $e.callMethod = "Get" '
            "return <hit>{$e.callId}</hit>"
        )
        assert plan.count(UNION) == 0
        assert plan.count(ALERTER) == 1
        assert plan.kind == PUBLISH
        assert plan.params["mode"] == "local"

    def test_identity_return(self):
        plan = compile_text(
            "for $e in outCOM(<p>local</p>) "
            "let $duration := $e.responseTimestamp - $e.callTimestamp "
            'where $duration > 10 and $e.callMethod = "GetTemperature" '
            "return $e by channel X and subscribe(b.com, #X, X)"
        )
        assert plan.count(RESTRUCTURE) == 0
        assert plan.params["mode"] == "channel"
        assert plan.params["target"] == "X"
        assert plan.params["subscriber"] == ("b.com", "X", "X")
        # 'local' peer placement resolved later
        assert plan.find_all(ALERTER)[0].placement is None

    def test_distinct_adds_node(self):
        plan = compile_text(
            "for $y in rssFeed(<p>news.com</p>) return distinct <a>{$y}</a>"
        )
        assert plan.count(DISTINCT) == 1

    def test_path_condition_becomes_complex_query(self):
        plan = compile_text(
            "for $c1 in inCOM(<p>a.com</p>) "
            'where $c1/alert[@callMethod = "GetTemperature"] '
            "return <hit>{$c1.callId}</hit>"
        )
        subscription = plan.find_all(FILTER)[0].params["subscription"]
        assert len(subscription.complex_queries) == 1
        assert subscription.complex_queries[0].variable == "c1"

    def test_path_equality_condition(self):
        plan = compile_text(
            "for $c1 in inCOM(<p>a.com</p>) "
            "where $c1/soap/method = \"GetTemperature\" "
            "return <hit>{$c1.callId}</hit>"
        )
        subscription = plan.find_all(FILTER)[0].params["subscription"]
        assert "text() = 'GetTemperature'" in subscription.complex_queries[0].expression

    def test_literal_on_left_is_normalised(self):
        plan = compile_text(
            'for $e in inCOM(<p>a.com</p>) where "GetTemperature" = $e.callMethod '
            "return <x>{$e.callId}</x>"
        )
        subscription = plan.find_all(FILTER)[0].params["subscription"]
        assert subscription.simple[0].attribute == "callMethod"
        assert subscription.simple[0].op == "="

    def test_same_variable_attribute_comparison(self):
        plan = compile_text(
            "for $e in inCOM(<p>a.com</p>) where $e.sent < $e.received "
            "return <x>{$e.callId}</x>"
        )
        subscription = plan.find_all(FILTER)[0].params["subscription"]
        assert len(subscription.computed) == 1


class TestNestedAndMembership:
    def test_nested_subscription_plan(self):
        plan = compile_text(
            "for $x in ( for $y in rssFeed(<p>news.com</p>) return <a>{$y}</a> ) "
            'where $x.kind = "add" return <fresh>{$x}</fresh>'
        )
        # nested plan contributes its restructure but not a publisher
        assert plan.count(PUBLISH) == 1
        assert plan.count(RESTRUCTURE) == 2
        assert plan.count(ALERTER) == 1

    def test_membership_driven_alerter(self):
        plan = compile_text(
            "for $j in areRegistered(<p>s.com</p>), $c in inCOM($j) "
            'where $c.callMethod = "Get" return <seen>{$c.caller}</seen>'
        )
        alerters = plan.find_all(ALERTER)
        dynamic = [node for node in alerters if node.params.get("membership_var")]
        assert len(dynamic) == 1
        assert dynamic[0].params["membership_var"] == "j"
        # the membership variable is not joined into the output
        assert plan.count(JOIN) == 0


class TestCompileErrors:
    @pytest.mark.parametrize(
        "text",
        [
            # unknown variable in WHERE
            'for $x in inCOM(<p>a</p>) where $y.a = "1" return <r>{$x}</r>',
            # unknown variable in template
            "for $x in inCOM(<p>a</p>) return <r>{$nope.a}</r>",
            # cross-variable inequality
            "for $x in inCOM(<p>a</p>), $y in inCOM(<p>b</p>) "
            "where $x.id = $y.id and $x.t < $y.t return <r/>",
            # no join condition between variables
            "for $x in inCOM(<p>a</p>), $y in inCOM(<p>b</p>) "
            'where $x.a = "1" and $y.b = "2" return <r/>',
            # condition without any stream variable
            'for $x in inCOM(<p>a</p>) where "a" = "a" return <r>{$x}</r>',
            # LET mixing two stream variables used in a filter condition
            "for $x in inCOM(<p>a</p>), $y in outCOM(<p>b</p>) "
            "let $d := $x.t - $y.t where $d > 5 and $x.id = $y.id return <r/>",
            # LET compared to a non-number
            "for $x in inCOM(<p>a</p>) let $d := $x.t where $d > 'abc' "
            "return <r>{$x}</r>",
            # membership variable that does not exist
            "for $c in inCOM($ghost) return <r>{$c}</r>",
        ],
    )
    def test_invalid_subscriptions_rejected(self, text):
        with pytest.raises(P2PMLCompileError):
            compile_text(text)

    def test_duplicate_variables_rejected(self):
        ast = parse_subscription(
            "for $x in inCOM(<p>a</p>), $x in inCOM(<p>b</p>) return <r>{$x}</r>"
        )
        with pytest.raises(P2PMLCompileError):
            compile_subscription(ast)

    def test_alerter_without_peers_rejected(self):
        ast = parse_subscription("for $x in inCOM(<q>not-a-peer</q>) return <r>{$x}</r>")
        with pytest.raises(P2PMLCompileError):
            compile_subscription(ast)
