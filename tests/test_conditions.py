"""Tests for simple conditions, the registry and filter subscriptions."""

import pytest

from repro.filtering import ConditionRegistry, FilterSubscription, SimpleCondition
from repro.xmlmodel import Element, XPath


class TestSimpleCondition:
    def test_equality_on_strings(self):
        cond = SimpleCondition("callee", "=", "http://meteo.com")
        assert cond.evaluate({"callee": "http://meteo.com"})
        assert not cond.evaluate({"callee": "http://other.com"})

    def test_missing_attribute_is_false(self):
        assert not SimpleCondition("x", "=", "1").evaluate({})

    def test_numeric_comparisons(self):
        assert SimpleCondition("duration", ">", "10").evaluate({"duration": "12"})
        assert not SimpleCondition("duration", ">", "10").evaluate({"duration": "9"})
        assert SimpleCondition("duration", "<=", "10").evaluate({"duration": "10"})
        assert SimpleCondition("duration", ">=", "10").evaluate({"duration": "10"})
        assert SimpleCondition("duration", "<", "10").evaluate({"duration": "2"})
        # "9" < "10" numerically even though "9" > "10" lexicographically
        assert SimpleCondition("v", "<", "10").evaluate({"v": "9"})

    def test_inequality(self):
        assert SimpleCondition("a", "!=", "x").evaluate({"a": "y"})
        assert not SimpleCondition("a", "!=", "x").evaluate({"a": "x"})

    def test_mixed_string_numeric_falls_back_to_string(self):
        assert SimpleCondition("a", "=", "abc").evaluate({"a": "abc"})
        assert not SimpleCondition("a", "=", "10").evaluate({"a": "ten"})

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            SimpleCondition("a", "~", "1")

    def test_value_coerced_to_string(self):
        cond = SimpleCondition("a", "=", 5)  # type: ignore[arg-type]
        assert cond.value == "5"
        assert cond.evaluate({"a": "5"})

    def test_str_representation(self):
        assert "callee" in str(SimpleCondition("callee", "=", "x"))


class TestConditionRegistry:
    def test_interning_assigns_stable_ids(self):
        registry = ConditionRegistry()
        c1 = SimpleCondition("a", "=", "1")
        c2 = SimpleCondition("b", "=", "2")
        id1 = registry.register(c1)
        id2 = registry.register(c2)
        assert id1 != id2
        assert registry.register(SimpleCondition("a", "=", "1")) == id1
        assert len(registry) == 2
        assert registry.condition(id1) == c1
        assert registry.id_of(c2) == id2
        assert c1 in registry

    def test_by_attribute_table(self):
        registry = ConditionRegistry()
        registry.register(SimpleCondition("a", "=", "1"))
        registry.register(SimpleCondition("a", ">", "5"))
        registry.register(SimpleCondition("b", "=", "2"))
        table = registry.by_attribute()
        assert len(table["a"]) == 2
        assert len(table["b"]) == 1

    def test_conditions_listing(self):
        registry = ConditionRegistry()
        registry.register(SimpleCondition("a", "=", "1"))
        assert registry.conditions() == [SimpleCondition("a", "=", "1")]


class TestFilterSubscription:
    def test_simple_vs_complex(self):
        simple = FilterSubscription("s", [SimpleCondition("a", "=", "1")])
        complex_sub = FilterSubscription(
            "c", [SimpleCondition("a", "=", "1")], [XPath.compile("//b")]
        )
        assert simple.is_simple and not simple.is_complex
        assert complex_sub.is_complex and not complex_sub.is_simple

    def test_condition_ids_sorted_and_deduplicated(self):
        registry = ConditionRegistry()
        # pre-register in a different order to check sorting
        registry.register(SimpleCondition("z", "=", "9"))
        sub = FilterSubscription(
            "s",
            [
                SimpleCondition("b", "=", "2"),
                SimpleCondition("a", "=", "1"),
                SimpleCondition("b", "=", "2"),
            ],
        )
        ids = sub.condition_ids(registry)
        assert ids == sorted(ids)
        assert len(ids) == 2

    def test_matches_extensionally(self):
        sub = FilterSubscription(
            "q",
            [SimpleCondition("attr1", "=", "x")],
            [XPath.compile("//c/d")],
        )
        matching = Element("root", {"attr1": "x"}, [Element("c", children=[Element("d")])])
        wrong_attr = Element("root", {"attr1": "y"}, [Element("c", children=[Element("d")])])
        wrong_body = Element("root", {"attr1": "x"}, [Element("c")])
        assert sub.matches_extensionally(matching)
        assert not sub.matches_extensionally(wrong_attr)
        assert not sub.matches_extensionally(wrong_body)
