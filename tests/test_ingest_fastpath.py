"""The subscription-ingestion fast path (PR 5).

Differential coverage: the indexed StreamDefinitionDatabase must return
byte-identical match sets to the XPath-query oracle under publish / retract /
replica / failure churn, ``submit_many`` must be observationally equivalent
to sequential ``submit``, and the reuse signature cache must never serve a
stale rewrite.
"""

import pytest

from repro.algebra.plan import ALERTER, EXISTING, FILTER, PUBLISH, PlanNode, plan_signature
from repro.dht.kadop import KadopIndex
from repro.filtering import FilterSubscription, SimpleCondition
from repro.filtering.conditions import ComputedCondition
from repro.monitor import P2PMSystem, ReuseEngine, StreamDefinitionDatabase
from repro.monitor.reuse import ReuseSignatureCache, reuse_cache_key
from repro.monitor.stream_db import StreamDescription, operator_spec
from repro.net import Peer, SimNetwork

METEO_TEMPLATE = """
for $c1 in outCOM(<p>a.com</p> <p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where
    $duration > {threshold} and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type="slowAnswer">
        <client>{{$c1.caller}}</client>
    </incident>
by publish as channel "alertQoS";
"""


def alerter(peer="a.com", kind="outCOM"):
    return PlanNode(ALERTER, {"alerter": kind, "peer": peer, "var": "c1"}, placement=peer)


def filter_over(child, value="GetTemperature"):
    sub = FilterSubscription("f", [SimpleCondition("callMethod", "=", value)])
    return PlanNode(FILTER, {"subscription": sub, "var": "c1"}, [child])


def make_system(n_peers=3):
    system = P2PMSystem(seed=5)
    peers = [system.add_peer(f"p{i}.example") for i in range(n_peers)]
    monitor = system.add_peer("monitor.example")
    return system, peers, monitor


def assert_db_matches_oracle(db: StreamDefinitionDatabase):
    """Every indexed lookup must equal the XPath oracle, byte for byte."""
    assert db.verify_index_coherence() == []
    descriptions = db.all_stream_descriptions()
    probed_alerters = set()
    probed_operators = set()
    probed_replicas = set()
    for description in descriptions:
        probed_alerters.add((description.peer_id, description.operator))
        probed_operators.add(
            (description.operator, description.spec, description.operands)
        )
        probed_replicas.add((description.peer_id, description.stream_id))
    probed_alerters.add(("ghost.example", "outCOM"))
    probed_operators.add(("Filter", "nospec", (("ghost.example", "s1"),)))
    probed_replicas.add(("ghost.example", "s1"))
    for peer_id, kind in probed_alerters:
        assert db.find_alerter_streams(peer_id, kind) == db.find_alerter_streams_oracle(
            peer_id, kind
        )
    for operator, spec, operands in probed_operators:
        for probe_spec in (spec, None):
            assert db.find_operator_streams(
                operator, probe_spec, list(operands)
            ) == db.find_operator_streams_oracle(operator, probe_spec, list(operands))
    for peer_id, stream_id in probed_replicas:
        assert db.find_replicas(peer_id, stream_id) == db.find_replicas_oracle(
            peer_id, stream_id
        )


class TestIndexedStreamDatabase:
    def test_matches_oracle_after_publish_retract_replica_churn(self):
        db = StreamDefinitionDatabase()
        doc_ids = []
        for i in range(6):
            peer = f"p{i % 3}.example"
            node = alerter(peer)
            doc_ids.append(db.publish_node(node, peer, f"outCOM-{i}", []))
            filt = filter_over(alerter(peer), value=f"Method{i % 2}")
            doc_ids.append(
                db.publish_node(filt, peer, f"f{i}", [(peer, f"outCOM-{i}")])
            )
        db.publish_replica("p0.example", "f0", "cache.example", "f0-copy")
        db.publish_replica("p0.example", "f0", "cache2.example", "f0-copy2")
        assert_db_matches_oracle(db)
        # retract half the descriptions, including a replica's original
        for doc_id in doc_ids[::2]:
            assert db.retract(doc_id)
        assert_db_matches_oracle(db)
        # re-publish into the same ids, then retract a replica
        db.publish_node(alerter("p0.example"), "p0.example", "outCOM-0", [])
        assert db.retract("replica:f0-copy@cache.example")
        assert_db_matches_oracle(db)

    def test_matches_oracle_under_peer_failure_churn(self):
        system, peers, monitor = make_system()
        db = system.stream_db
        for i, peer in enumerate(peers):
            db.publish_node(alerter(peer.peer_id), peer.peer_id, f"outCOM-{i}", [])
        db.publish_replica("p0.example", "outCOM-0", "p1.example", "copy-1")
        assert_db_matches_oracle(db)
        # an abrupt DHT failure loses keys; re-replication must leave the
        # secondary indexes agreeing with the restored document store
        system.kadop.fail_peer("p1.example")
        assert_db_matches_oracle(db)
        system.kadop.join_peer("p1.example")
        assert_db_matches_oracle(db)

    def test_republish_under_same_doc_id_replaces_old_filing(self):
        """KadoP overwrites silently; stale operator/alerter buckets must go."""
        db = StreamDefinitionDatabase()
        source = alerter("p.example")
        db.publish_node(source, "p.example", "s1", [])
        old_spec = operator_spec(source)
        assert len(db.find_alerter_streams("p.example", "outCOM")) == 1
        # same stream id, now described as a Filter over another stream
        filt = filter_over(alerter("q.example"))
        db.publish_node(filt, "p.example", "s1", [("q.example", "outCOM")])
        assert db.find_alerter_streams("p.example", "outCOM") == []
        assert db.find_operator_streams("outCOM", old_spec, []) == []
        found = db.find_operator_streams(
            "Filter", operator_spec(filt), [("q.example", "outCOM")]
        )
        assert [d.qualified_id for d in found] == ["s1@p.example"]
        assert_db_matches_oracle(db)
        # replicas too: republish the same replica doc id for another original
        from repro.xmlmodel import Element

        db.publish_replica("p.example", "s1", "cache.example", "copy")
        db.index.publish(
            Element(
                "InChannel",
                {"PeerId": "other.example", "StreamId": "s9",
                 "ReplicaPeerId": "cache.example", "ReplicaStreamId": "copy"},
            ),
            "replica:copy@cache.example",
        )
        assert db.find_replicas("p.example", "s1") == []
        assert db.find_replicas("other.example", "s9") == [("cache.example", "copy")]
        assert_db_matches_oracle(db)

    def test_join_window_and_group_every_distinguish_signatures(self):
        from repro.algebra.plan import GROUP, JOIN

        short = PlanNode(JOIN, {"left_var": "a", "right_var": "b",
                                "predicate": [("x", "x")], "window": 10},
                         [alerter(), alerter("b.com")])
        long = PlanNode(JOIN, {"left_var": "a", "right_var": "b",
                               "predicate": [("x", "x")], "window": 20},
                        [alerter(), alerter("b.com")])
        assert operator_spec(short) != operator_spec(long)
        fast = PlanNode(GROUP, {"key": "k", "every": 5}, [alerter()])
        slow = PlanNode(GROUP, {"key": "k", "every": 50}, [alerter()])
        assert operator_spec(fast) != operator_spec(slow)

    def test_template_body_distinguishes_signatures(self):
        from repro.algebra.plan import RESTRUCTURE
        from repro.algebra.template import RestructureTemplate
        from repro.xmlmodel import Element

        one = Element("incident", {"type": "slow"}, text="{$c.caller}")
        two = Element("incident", {"type": "fast"}, text="{$c.callee}")
        a = PlanNode(RESTRUCTURE, {"template": RestructureTemplate(one)}, [alerter()])
        b = PlanNode(RESTRUCTURE, {"template": RestructureTemplate(two)}, [alerter()])
        assert operator_spec(a) != operator_spec(b)

    def test_index_picks_up_direct_index_publishes(self):
        index = KadopIndex()
        db = StreamDefinitionDatabase(index)
        # bypass the facade entirely: publish a raw description into KadoP
        description = db.describe_node(alerter("x.example"), "x.example", "s1", [])
        index.publish(description, "stream:s1@x.example")
        found = db.find_alerter_streams("x.example", "outCOM")
        assert [d.qualified_id for d in found] == ["s1@x.example"]
        index.unpublish("stream:s1@x.example")
        assert db.find_alerter_streams("x.example", "outCOM") == []
        assert db.verify_index_coherence() == []

    def test_preexisting_documents_are_indexed_on_construction(self):
        index = KadopIndex()
        helper = StreamDefinitionDatabase(index)  # noqa: F841 - used to build the doc
        description = helper.describe_node(alerter("y.example"), "y.example", "s2", [])
        index.publish(description, "stream:s2@y.example")
        late = StreamDefinitionDatabase(index)
        assert [d.qualified_id for d in late.find_alerter_streams("y.example", "outCOM")] == [
            "s2@y.example"
        ]

    def test_verify_index_coherence_detects_tampering(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        assert db.verify_index_coherence() == []
        db._descriptions.clear()  # simulate a desynchronised index
        assert db.verify_index_coherence() != []

    def test_use_index_false_routes_to_oracle(self):
        db = StreamDefinitionDatabase(use_index=False)
        db.publish_node(alerter(), "a.com", "outCOM", [])
        assert [d.qualified_id for d in db.find_alerter_streams("a.com", "outCOM")] == [
            "outCOM@a.com"
        ]

    def test_stream_description_is_slotted(self):
        description = StreamDescription("p", "s", True, "Filter", "spec", ())
        assert not hasattr(description, "__dict__")
        assert description.qualified_id == "s@p"


class TestKadopQueryCache:
    def test_repeat_query_hits_cache(self):
        index = KadopIndex()
        db = StreamDefinitionDatabase(index, use_index=False)
        db.publish_node(alerter(), "a.com", "outCOM", [])
        first = db.find_alerter_streams("a.com", "outCOM")
        hits_before = index.query_cache_hits
        assert db.find_alerter_streams("a.com", "outCOM") == first
        assert index.query_cache_hits == hits_before + 1

    def test_publish_and_unpublish_invalidate(self):
        index = KadopIndex()
        db = StreamDefinitionDatabase(index, use_index=False)
        doc = db.publish_node(alerter(), "a.com", "outCOM", [])
        assert len(db.find_alerter_streams("a.com", "outCOM")) == 1
        other = db.publish_node(alerter("b.com"), "b.com", "outCOM", [])
        assert len(db.find_alerter_streams("b.com", "outCOM")) == 1
        db.retract(doc)
        assert db.find_alerter_streams("a.com", "outCOM") == []
        db.retract(other)
        assert db.find_alerter_streams("b.com", "outCOM") == []

    def test_failure_invalidates(self):
        index = KadopIndex()
        for peer in ("p1", "p2", "p3"):
            index.join_peer(peer)
        db = StreamDefinitionDatabase(index, use_index=False)
        db.publish_node(alerter(), "a.com", "outCOM", [])
        before = db.find_alerter_streams("a.com", "outCOM")
        index.fail_peer("p2")
        # the cache was dropped wholesale; the restored store answers fresh
        assert db.find_alerter_streams("a.com", "outCOM") == before

    def test_query_lookup_cost_bypasses_cache(self):
        index = KadopIndex()
        db = StreamDefinitionDatabase(index, use_index=False)
        db.publish_node(alerter(), "a.com", "outCOM", [])
        query = "/Stream[@PeerId = 'a.com'][Operator/outCOM]"
        index.query(query)
        cost = index.query_lookup_cost(query)
        assert cost["lookups"] > 0


class TestSignatures:
    def test_computed_conditions_distinguish_filters(self):
        """Two filters differing only in a LET-derived threshold are distinct."""
        low = FilterSubscription(
            "f", computed=[ComputedCondition(((1, "duration"),), ">", 5)]
        )
        high = FilterSubscription(
            "f", computed=[ComputedCondition(((1, "duration"),), ">", 10)]
        )
        low_node = PlanNode(FILTER, {"subscription": low, "var": "c"}, [alerter()])
        high_node = PlanNode(FILTER, {"subscription": high, "var": "c"}, [alerter()])
        assert operator_spec(low_node) != operator_spec(high_node)
        assert plan_signature(low_node) != plan_signature(high_node)

    def test_operator_spec_memoised_and_carried_by_copy(self):
        node = filter_over(alerter())
        spec = operator_spec(node)
        assert node._spec == spec
        assert node.copy()._spec == spec
        assert operator_spec(node.copy()) == spec

    def test_plan_node_is_slotted(self):
        node = alerter()
        assert not hasattr(node, "__dict__")
        with pytest.raises(AttributeError):
            node.arbitrary = 1

    def test_cache_key_separates_variable_renames(self):
        a = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        b = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        b.children[0].params["var"] = "other"
        assert plan_signature(a) == plan_signature(b)
        assert reuse_cache_key(a) != reuse_cache_key(b)

    def test_cache_key_ignores_local_target(self):
        a = PlanNode(PUBLISH, {"mode": "local", "target": "sub-1"}, [filter_over(alerter())])
        b = PlanNode(PUBLISH, {"mode": "local", "target": "sub-2"}, [filter_over(alerter())])
        assert reuse_cache_key(a) == reuse_cache_key(b)


class TestReuseFastPath:
    def test_select_provider_without_network_issues_no_query(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        db.publish_replica("a.com", "outCOM", "near.com", "copy-1")
        engine = ReuseEngine(db)  # no network, no consumer peer
        queries_before = db.index.query_cache_hits + db.index.query_cache_misses
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [alerter()])
        rewritten, report = engine.apply(plan)
        existing = rewritten.find_all(EXISTING)[0]
        # the original stream is the provider; replicas were never consulted
        assert existing.params["provider_peer"] == "a.com"
        assert report.queries_issued == 1  # only the alerter match probe
        assert db.index.query_cache_hits + db.index.query_cache_misses == queries_before

    def test_signature_cache_hit_replays_rewrite(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        cache = ReuseSignatureCache()
        engine = ReuseEngine(db, signature_cache=cache)
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        first, first_report = engine.apply(plan.copy())
        second, second_report = engine.apply(plan.copy())
        assert cache.hits == 1 and cache.misses == 1
        assert second_report.cache_hit
        assert first.describe() == second.describe()
        assert first_report.nodes_reused == second_report.nodes_reused
        assert first_report.nodes_considered == second_report.nodes_considered
        assert first_report.reused == second_report.reused

    def test_signature_cache_invalidated_by_new_stream(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        cache = ReuseSignatureCache()
        engine = ReuseEngine(db, signature_cache=cache)
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        _, first_report = engine.apply(plan.copy())
        assert first_report.nodes_reused == 1
        # the filter stream appears: a replay of the stale rewrite would miss it
        the_filter = filter_over(alerter())
        db.publish_node(the_filter, "a.com", "f1", [("a.com", "outCOM")])
        _, second_report = engine.apply(plan.copy())
        assert not second_report.cache_hit
        assert second_report.nodes_reused == 2

    def test_signature_cache_hit_reranks_providers(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        network = SimNetwork(seed=1)
        Peer("a.com", network, coordinates=(0.9, 0.9))
        Peer("consumer.com", network, coordinates=(0.1, 0.1))
        cache = ReuseSignatureCache()
        engine = ReuseEngine(
            db, network=network, consumer_peer="consumer.com", signature_cache=cache
        )
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [alerter()])
        first, _ = engine.apply(plan.copy())
        assert first.find_all(EXISTING)[0].params["provider_peer"] == "a.com"
        # a closer replica appears; replicas do not invalidate the signature
        # cache, so the hit path must re-rank providers on its own
        Peer("near.com", network, coordinates=(0.11, 0.1))
        db.publish_replica("a.com", "outCOM", "near.com", "copy-1")
        second, report = engine.apply(plan.copy())
        assert report.cache_hit
        existing = second.find_all(EXISTING)[0]
        assert existing.params["provider_peer"] == "near.com"
        assert existing.params["provider_stream_id"] == "copy-1"
        assert existing.params["peer"] == "a.com"


class TestSubmitMany:
    @pytest.mark.parametrize("mix", ["meteo", "overlap"])
    def test_equivalent_to_sequential_submit(self, mix):
        if mix == "meteo":
            texts = [
                METEO_TEMPLATE.format(threshold=[5, 10, 15][i % 3]) for i in range(9)
            ]
        else:
            texts = [
                'for $c in outCOM(<p>p0.example</p>) where $c.callMethod = "M" '
                'return <hit>{$c.caller}</hit> by publish as channel "ch"'
            ] * 6
        systems = {}
        for strategy in ("sequential", "batch"):
            system = P2PMSystem(seed=5)
            for peer_id in ("a.com", "b.com", "meteo.com", "p0.example"):
                system.add_peer(peer_id)
            monitor = system.add_peer("monitor.example")
            sub_ids = [f"s-{i}" for i in range(len(texts))]
            if strategy == "batch":
                handles = monitor.subscribe_many(texts, sub_ids=sub_ids)
            else:
                handles = [
                    monitor.subscribe(text, sub_id=sub_id)
                    for text, sub_id in zip(texts, sub_ids)
                ]
            systems[strategy] = (system, handles)
        _, sequential = systems["sequential"]
        _, batch = systems["batch"]
        assert [h.sub_id for h in batch] == [h.sub_id for h in sequential]
        for batch_handle, sequential_handle in zip(batch, sequential):
            assert batch_handle.operator_count == sequential_handle.operator_count
            assert batch_handle.peers_involved() == sequential_handle.peers_involved()
            assert (
                batch_handle.task.channels_created
                == sequential_handle.task.channels_created
            )
            batch_report = batch_handle.reuse_report
            sequential_report = sequential_handle.reuse_report
            assert batch_report.nodes_reused == sequential_report.nodes_reused
            assert batch_report.nodes_considered == sequential_report.nodes_considered
            assert batch_report.reused == sequential_report.reused
            assert batch_handle.plan.describe() == sequential_handle.plan.describe()

    def test_batch_delivers_results(self):
        from repro.workloads import MeteoScenario

        scenario = MeteoScenario(threshold=10.0, slow_fraction=0.3, seed=11)
        texts = [scenario.subscription_text()] * 3
        handles = scenario.monitor.subscribe_many(
            texts, sub_ids=["m-0", "m-1", "m-2"], max_results=1000
        )
        scenario.system.run()
        scenario.run_traffic(60)
        reference = len(handles[0].results())
        assert reference > 0
        assert all(len(handle.results()) == reference for handle in handles)

    def test_mismatched_sub_ids_rejected(self):
        system = P2PMSystem(seed=5)
        monitor = system.add_peer("monitor.example")
        with pytest.raises(ValueError):
            monitor.subscribe_many(["for $e in outCOM(<p>local</p>) return $e"], sub_ids=[])

    def test_partial_failure_preserves_deployed_prefix(self):
        from repro.monitor import SubmitManyError

        system = P2PMSystem(seed=5)
        system.add_peer("p0.example")
        monitor = system.add_peer("monitor.example")
        good = (
            'for $c in outCOM(<p>p0.example</p>) where $c.callMethod = "M" '
            'return <hit>{$c.caller}</hit> by publish as channel "ch"'
        )
        with pytest.raises(SubmitManyError) as err:
            monitor.subscribe_many([good, "this is not P2PML"], sub_ids=["ok-0", "bad-1"])
        assert err.value.index == 1
        assert err.value.__cause__ is not None
        (survivor,) = err.value.handles
        # the deployed prefix is alive and fully operational...
        assert survivor.sub_id == "ok-0" and survivor.is_active
        assert survivor.operator_count > 0
        # ...the failing entry left no phantom record behind...
        assert "bad-1" not in monitor.manager.database
        # ...and the survivor can be retired normally
        assert survivor.cancel()

    def test_batch_cancellation_is_independent(self):
        system = P2PMSystem(seed=5)
        system.add_peer("p0.example")
        monitor = system.add_peer("monitor.example")
        text = (
            'for $c in outCOM(<p>p0.example</p>) where $c.callMethod = "M" '
            'return <hit>{$c.caller}</hit> by publish as channel "ch"'
        )
        first, second = monitor.subscribe_many([text, text], sub_ids=["c-0", "c-1"])
        assert first.cancel()
        assert second.is_active
        assert second.cancel()


class TestIngestGate:
    def test_small_rows_are_not_gated(self):
        """Sub-100ms cells flake on scheduler noise; only >=1k rows gate."""
        from benchmarks.bench_ingest import GATE_MIN_SUBSCRIPTIONS, compare_to_baseline

        def row(n, rate):
            return {"mix": "meteo", "subscriptions": n, "mode": "batch",
                    "subs_per_sec": rate}

        baseline = {"throughput": [row(100, 1000.0), row(1000, 1000.0)]}
        # a collapsed small row is ignored; a collapsed gated row is flagged
        assert compare_to_baseline(
            {"throughput": [row(100, 1.0), row(1000, 999.0)]}, baseline, 0.4
        ) == []
        problems = compare_to_baseline(
            {"throughput": [row(1000, 1.0)]}, baseline, 0.4
        )
        assert len(problems) == 1 and "subs=1000" in problems[0]
        assert GATE_MIN_SUBSCRIPTIONS == 1000


class TestChannelNameAllocation:
    def test_suffix_sequence_and_reuse_after_free(self):
        system = P2PMSystem(seed=5)
        system.add_peer("p0.example")
        monitor = system.add_peer("monitor.example")
        text = (
            "for $c in outCOM(<p>p0.example</p>) "
            'return <hit>{$c.caller}</hit> by publish as channel "dup"'
        )
        handles = monitor.subscribe_many([text] * 3, sub_ids=["d-0", "d-1", "d-2"])
        names = [h.task.channels_created[-1] for h in handles]
        assert names == [
            "#dup@monitor.example",
            "#dup-2@monitor.example",
            "#dup-3@monitor.example",
        ]
        # cancelling the middle one frees its name; the next subscription
        # must find the freed slot again (the probe restarts on frees)
        handles[1].cancel()
        replacement = monitor.subscribe(text, sub_id="d-3")
        assert replacement.task.channels_created[-1] == "#dup-2@monitor.example"
