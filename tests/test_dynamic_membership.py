"""End-to-end test of membership-driven monitoring (Section 2's areRegistered)."""

from repro.monitor import P2PMSystem
from repro.workloads import SoapTrafficGenerator


def test_dynamic_alerter_follows_joins_and_leaves():
    system = P2PMSystem(seed=5)
    servers = [system.add_peer(f"server{i}.example") for i in range(3)]
    monitor = system.add_peer("monitor.example")

    traffic = SoapTrafficGenerator(
        clients=["client.example"],
        servers=[peer.peer_id for peer in servers],
        methods=["Get"],
        seed=5,
    )
    system.add_peer("client.example")
    for peer in servers:
        peer.add_alerter_hook(
            lambda alerter: traffic.attach_alerter(alerter)
            if hasattr(alerter, "observe_call")
            else None
        )

    task = monitor.subscribe(
        """
        for $j in areRegistered(<p>monitor.example</p>),
            $c in inCOM($j)
        where $c.callMethod = "Get"
        return <seen callee="{$c.callee}"/>
        """,
        sub_id="dynamic-watch",
        max_results=1024,
    )
    system.run()

    # no server is registered in the monitored DHT yet: nothing is observed
    traffic.run(30)
    system.run()
    assert task.results() == []

    # server0 registers: only its calls are observed from now on
    system.kadop.join_peer("server0.example")
    system.run()
    traffic.run(60)
    system.run()
    observed = {item.attrib["callee"] for item in task.results()}
    assert observed == {"server0.example"}
    count_after_first_phase = len(task.results())
    assert count_after_first_phase > 0

    # server1 registers too
    system.kadop.join_peer("server1.example")
    system.run()
    traffic.run(60)
    system.run()
    observed = {item.attrib["callee"] for item in task.results()}
    assert observed == {"server0.example", "server1.example"}

    # server0 leaves: its calls stop being reported
    system.kadop.leave_peer("server0.example")
    system.run()
    before = len(task.results())
    only_server0 = SoapTrafficGenerator(
        clients=["client.example"], servers=["server0.example"], methods=["Get"], seed=9
    )
    alerter = system.peer("server0.example").alerter("inCOM")
    only_server0.attach_alerter(alerter)
    only_server0.run(40)
    system.run()
    assert len(task.results()) == before
