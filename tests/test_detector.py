"""Tests for heartbeat failure detection and detector-driven recovery.

The failure oracle (synchronous ``fail_peer`` callbacks) is replaced by
the :class:`~repro.net.detector.HeartbeatDetector`: seeded neighbor pings
every tick, ALIVE -> SUSPECT -> CONFIRMED escalation with a bounded
latency, suspicion debounce, sticky confirmation and an explicit rejoin
handshake.  In detector mode, kills are *silent* -- these tests prove the
detector (not the oracle) drives index repair and redeployment.
"""

from repro.algebra.plan import UNION
from repro.monitor import P2PMSystem
from repro.net.detector import ALIVE, CONFIRMED, SUSPECT, DetectorConfig
from repro.workloads import ChaosFeedWorkload
from repro.workloads.chaos_feed import CHAOS_FUNCTION


def build_system(n_sources=3, seed=1):
    system = P2PMSystem(seed=seed, failure_mode="detector")
    sources = [f"s{i}" for i in range(n_sources)]
    for source in sources:
        system.add_peer(source)
    monitor = system.add_peer("monitor")
    return system, sources, monitor


def subscription_text(sources) -> str:
    peers = " ".join(f"<p>{source}</p>" for source in sources)
    return (
        f'for $x in {CHAOS_FUNCTION}({peers}) where $x.kind = "chaos" '
        "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
    )


def run_ticks(system, n):
    for _ in range(n):
        system.tick()
        system.run()


class TestObservationRing:
    def test_targets_are_deterministic_per_seed(self):
        first, _, _ = build_system(n_sources=5, seed=3)
        second, _, _ = build_system(n_sources=5, seed=3)
        for peer_id in first.peer_ids:
            assert first.detector.targets(peer_id) == second.detector.targets(
                peer_id
            )

    def test_fanout_bounds_target_count(self):
        system, _, _ = build_system(n_sources=6, seed=2)
        fanout = system.detector.config.fanout
        for peer_id in system.peer_ids:
            targets = system.detector.targets(peer_id)
            assert len(targets) == fanout
            assert peer_id not in targets

    def test_oracle_mode_has_no_detector(self):
        system = P2PMSystem(seed=1, failure_mode="oracle")
        assert system.detector is None
        assert system.reliable_channels is False


class TestDetectionLatency:
    def test_silent_kill_confirmed_within_bound(self):
        system, sources, monitor = build_system(seed=4)
        run_ticks(system, 2)  # steady state: everyone has fresh evidence
        victim = sources[0]
        killed_at = system.detector.tick_count
        system.fail_peer(victim)  # detector mode: the kill is silent
        assert system.network.down_peers() == frozenset({victim})
        assert system.detector.status(victim) == ALIVE  # nobody knows yet
        bound = system.detector.config.confirm_after + 1
        run_ticks(system, bound)
        assert system.detector.status(victim) == CONFIRMED
        confirmed_at = dict(
            (peer, tick) for tick, peer in system.detector.confirmations
        )[victim]
        assert confirmed_at - killed_at <= bound
        assert victim in system.believed_down()

    def test_confirmation_drives_index_repair_and_redeploy(self):
        system, sources, monitor = build_system(seed=5)
        handle = monitor.subscribe(subscription_text(sources), sub_id="det")
        system.run()
        run_ticks(system, 2)
        victim = handle.plan.find_all(UNION)[0].placement
        system.fail_peer(victim)
        # the oracle chain did NOT run: no recovery until the detector speaks
        assert not any(e.trigger == "failure" for e in system.recovery.events)
        run_ticks(system, system.detector.config.confirm_after + 1)
        outcomes = [e.outcome for e in system.recovery.events]
        assert "recovering" in outcomes
        assert any(o in ("degraded", "deployed") for o in outcomes)
        assert victim not in handle.plan.find_all(UNION)[0].placement
        # the DHT index was repaired off the confirmation as well
        assert victim in system.believed_down()

    def test_detector_keeps_delivering_after_silent_kill(self):
        system, sources, monitor = build_system(seed=6)
        handle = monitor.subscribe(subscription_text(sources), sub_id="flow")
        system.run()
        received = []
        handle.on_result(
            lambda item: received.append(
                (item.find("src").text, int(item.find("n").text))
            )
        )
        workload = ChaosFeedWorkload(sources)
        victim = handle.plan.find_all(UNION)[0].placement
        for tick in range(12):
            if tick == 4:
                system.fail_peer(victim)
            system.tick()
            system.run()
            workload.tick(system, tick)
            system.run()
        survivors = [s for s in sources if s != victim]
        late = [n for src, n in received if n >= 10 and src in survivors]
        assert len(late) == len(survivors) * 2  # ticks 10 and 11 delivered


class TestSuspicionDebounce:
    def test_transient_partition_never_confirms(self):
        system, sources, monitor = build_system(seed=7)
        run_ticks(system, 2)
        victim = sources[1]
        others = [p for p in system.peer_ids if p != victim]
        system.network.partition("blip", [victim], others)
        run_ticks(system, system.detector.config.suspect_after)
        assert system.detector.status(victim) == SUSPECT
        assert victim in system.suspected_peers()
        assert victim in system.avoid_peers()
        system.network.heal("blip")
        system.run()  # released heartbeats arrive before the next evaluation
        run_ticks(system, 2)
        assert system.detector.status(victim) == ALIVE
        assert [p for t, p in system.detector.confirmations] == []
        # debounce means the suspicion left no trace on the deployments
        assert system.recovery.events == []


class TestRejoinHandshake:
    def test_confirmed_peer_rejoins_on_silent_revival(self):
        system, sources, monitor = build_system(seed=8)
        handle = monitor.subscribe(subscription_text(sources), sub_id="rj")
        system.run()
        run_ticks(system, 2)
        victim = sources[0]
        system.fail_peer(victim)
        run_ticks(system, system.detector.config.confirm_after + 1)
        assert system.detector.status(victim) == CONFIRMED
        system.revive_peer(victim)  # silent: no lifecycle notification
        run_ticks(system, 2)
        assert system.detector.status(victim) == ALIVE
        assert victim in [p for t, p in system.detector.rejoins]
        # the revival re-drove recovery: the pruned source is covered again
        outcomes = [
            e.outcome for e in system.recovery.events if e.trigger == "revival"
        ]
        assert "deployed" in outcomes
        assert handle.status == "deployed"

    def test_falsely_confirmed_peer_reintegrates_after_partition(self):
        system, sources, monitor = build_system(seed=9)
        run_ticks(system, 2)
        victim = sources[2]
        others = [p for p in system.peer_ids if p != victim]
        system.network.partition("long", [victim], others)
        run_ticks(system, system.detector.config.confirm_after + 1)
        assert system.detector.status(victim) == CONFIRMED
        # the peer is alive behind the cut and keeps asking back in; stray
        # held pings released by the heal must NOT resurrect it -- only its
        # explicit hb.rejoin does
        system.network.heal("long")
        run_ticks(system, 2)
        assert system.detector.status(victim) == ALIVE
        assert victim in [p for t, p in system.detector.rejoins]


class TestDetectorConfig:
    def test_custom_config_changes_latency(self):
        config = DetectorConfig(fanout=2, suspect_after=3, confirm_after=5)
        system = P2PMSystem(seed=3, failure_mode="detector", detector_config=config)
        for i in range(4):
            system.add_peer(f"p{i}")
        run_ticks(system, 2)
        system.fail_peer("p0")
        run_ticks(system, 4)  # would be confirmed under the default config
        assert system.detector.status("p0") == SUSPECT
        run_ticks(system, 2)
        assert system.detector.status("p0") == CONFIRMED
