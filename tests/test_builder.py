"""SubscriptionBuilder: the fluent API compiles to the same plans as P2PML text."""

import pytest

from repro.algebra.plan import plan_signature
from repro.p2pml import P2PMLCompileError, SubscriptionBuilder, parse_subscription
from repro.p2pml.ast import Operand
from repro.p2pml.compiler import compile_subscription
from repro.workloads import MeteoScenario
from repro.workloads.meteo import METEO_SUBSCRIPTION_TEMPLATE
from repro.xmlmodel.tree import Element


class TestOperandParse:
    def test_reference_forms(self):
        attr = Operand.parse("$c.callId")
        assert (attr.kind, attr.var, attr.detail) == ("attribute", "c", "callId")
        path = Operand.parse("$x/rss/entry")
        assert (path.kind, path.var, path.detail) == ("path", "x", "rss/entry")
        var = Operand.parse("$j")
        assert (var.kind, var.var) == ("variable", "j")

    def test_literal_forms(self):
        assert Operand.parse(10).kind == "number"
        assert Operand.parse("10.5").kind == "number"
        quoted = Operand.parse('"GetTemperature"')
        assert (quoted.kind, quoted.value) == ("literal", "GetTemperature")
        bare = Operand.parse("fault")
        assert (bare.kind, bare.value) == ("literal", "fault")

    def test_operand_passthrough(self):
        operand = Operand("literal", value="x")
        assert Operand.parse(operand) is operand


def meteo_builder(threshold=10.0):
    return (
        SubscriptionBuilder()
        .for_var("c1", "outCOM", "a.com", "b.com")
        .for_var("c2", "inCOM", "meteo.com")
        .let("duration", "$c1.responseTimestamp - $c1.callTimestamp")
        .where("$duration", ">", threshold)
        .where("$c1.callMethod", "=", '"GetTemperature"')
        .where("$c1.callee", "=", '"meteo.com"')
        .where("$c1.callId", "=", "$c2.callId")
        .returns(
            '<incident type="slowAnswer">'
            "<client>{$c1.caller}</client>"
            "<tstamp>{$c2.callTimestamp}</tstamp>"
            "</incident>"
        )
        .by_channel("alertQoS")
    )


class TestBuilderEquivalence:
    def test_compiles_to_the_same_plan_as_text(self):
        text_ast = parse_subscription(METEO_SUBSCRIPTION_TEMPLATE.format(threshold=10))
        built_ast = meteo_builder(threshold=10).build()
        text_plan = compile_subscription(text_ast, "meteo-qos")
        built_plan = compile_subscription(built_ast, "meteo-qos")
        assert plan_signature(built_plan) == plan_signature(text_plan)

    def test_built_subscription_reuses_textual_streams(self):
        scenario = MeteoScenario(threshold=10.0, slow_fraction=0.3, seed=47)
        first = scenario.deploy()
        second = scenario.monitor.subscribe(
            meteo_builder(threshold=10.0), sub_id="meteo-built", max_results=10_000
        )
        scenario.system.run()
        # the Reuse algorithm recognises the built plan as already running
        assert second.reuse_report.nodes_reused > 0
        assert second.operator_count < first.operator_count
        scenario.run_traffic(120)
        assert len(second.results()) == len(first.results()) > 0
        second.cancel()
        first.cancel()
        assert len(scenario.system.resources) == 0

    def test_membership_follow_builds_dynamic_alerter(self):
        ast = (
            SubscriptionBuilder()
            .for_var("j", "areRegistered", "monitor.example")
            .for_var("c", "inCOM", follow="$j")
            .where("$c.callMethod", "=", '"Get"')
            .returns('<seen callee="{$c.callee}"/>')
            .build()
        )
        text = parse_subscription(
            """
            for $j in areRegistered(<p>monitor.example</p>),
                $c in inCOM($j)
            where $c.callMethod = "Get"
            return <seen callee="{$c.callee}"/>
            """
        )
        assert plan_signature(compile_subscription(ast, "s")) == plan_signature(
            compile_subscription(text, "s")
        )

    def test_identity_projection_and_distinct(self):
        ast = (
            SubscriptionBuilder()
            .for_var("x", "rssFeed", "feeds.example")
            .where("$x.kind", "=", '"add"')
            .distinct()
            .returns("$x")
            .build()
        )
        text = parse_subscription(
            'for $x in rssFeed(<p>feeds.example</p>) where $x.kind = "add" '
            "return distinct $x"
        )
        assert plan_signature(compile_subscription(ast, "s")) == plan_signature(
            compile_subscription(text, "s")
        )

    def test_template_element_accepted_directly(self):
        template = Element("out", text="{$x}")
        ast = (
            SubscriptionBuilder()
            .for_var("x", "rssFeed", "feeds.example")
            .returns(template)
            .build()
        )
        assert ast.template is template


class TestBuilderValidation:
    def test_empty_subscription_rejected(self):
        with pytest.raises(P2PMLCompileError, match="FOR binding"):
            SubscriptionBuilder().build()

    def test_alerter_needs_peers_or_follow(self):
        with pytest.raises(P2PMLCompileError, match="no monitored peer"):
            SubscriptionBuilder().for_var("c", "inCOM")
        with pytest.raises(P2PMLCompileError, match="cannot both"):
            SubscriptionBuilder().for_var("c", "inCOM", "a.com", follow="$j")

    def test_condition_needs_right_side_with_operator(self):
        with pytest.raises(P2PMLCompileError, match="no right side"):
            SubscriptionBuilder().where("$x.kind", "=")

    def test_where_exists_requires_path(self):
        builder = SubscriptionBuilder().for_var("x", "rssFeed", "feeds.example")
        builder.where_exists("$x/rss/entry")
        with pytest.raises(P2PMLCompileError, match="path expression"):
            builder.where_exists("$x.kind")

    def test_empty_let_rejected(self):
        with pytest.raises(P2PMLCompileError, match="empty expression"):
            SubscriptionBuilder().let("d", "  ")

    def test_let_signs(self):
        builder = SubscriptionBuilder().let("d", "-$a.x + $a.y - 3")
        definition = builder._lets[0]
        assert [(sign, str(op)) for sign, op in definition.terms] == [
            (-1, "$a.x"),
            (1, "$a.y"),
            (-1, "3"),
        ]
