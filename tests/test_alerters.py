"""Tests for the alerters and the workload generators that drive them."""

import pytest

from repro.alerters import (
    AreRegisteredAlerter,
    AXMLRepository,
    AXMLRepositoryAlerter,
    RSSFeedAlerter,
    WebPageAlerter,
    WSAlerter,
)
from repro.dht import KadopIndex
from repro.streams import collect
from repro.workloads import RSSFeedSimulator, SoapTrafficGenerator, WebPageSimulator
from repro.xmlmodel import Element


class TestWSAlerter:
    def test_direction_validation(self):
        with pytest.raises(ValueError):
            WSAlerter("a.com", "sideways")

    def test_out_alerter_sees_only_own_calls(self):
        generator = SoapTrafficGenerator(["a.com", "b.com"], ["meteo.com"], seed=3)
        alerter = WSAlerter("a.com", "out")
        generator.attach_alerter(alerter)
        sink = collect(alerter.output)
        calls = generator.run(50)
        own = [call for call in calls if call.caller == "a.com"]
        assert len(sink) == len(own)
        assert all(item.attrib["caller"] == "a.com" for item in sink)
        assert alerter.p2pml_function == "outCOM"

    def test_in_alerter_sees_served_calls(self):
        generator = SoapTrafficGenerator(["a.com"], ["meteo.com"], seed=3)
        alerter = WSAlerter("meteo.com", "in")
        generator.attach_alerter(alerter)
        sink = collect(alerter.output)
        generator.run(20)
        assert len(sink) == 20
        assert alerter.p2pml_function == "inCOM"

    def test_alert_shape(self):
        generator = SoapTrafficGenerator(["a.com"], ["meteo.com"], error_rate=1.0, seed=1)
        alerter = WSAlerter("meteo.com", "in")
        generator.attach_alerter(alerter)
        sink = collect(alerter.output)
        generator.run(1)
        alert = sink[0]
        for attr in ("callId", "caller", "callee", "callMethod", "callTimestamp", "responseTimestamp"):
            assert attr in alert.attrib
        assert alert.find("Envelope") is not None
        assert alert.find("error") is not None  # error_rate=1.0

    def test_traffic_generator_validation_and_durations(self):
        with pytest.raises(ValueError):
            SoapTrafficGenerator([], ["s"])
        generator = SoapTrafficGenerator(["c"], ["s"], slow_fraction=0.5, seed=5)
        calls = generator.run(100)
        assert all(call.duration > 0 for call in calls)
        slow = [call for call in calls if call.duration > 10]
        assert slow  # the slow regime produces >10s calls with the default mean


class TestRSSAlerter:
    def test_first_poll_is_baseline(self):
        feed = RSSFeedSimulator("http://news.example/rss", seed=2)
        alerter = RSSFeedAlerter("news.example", feed.feed_url, feed.snapshot)
        assert alerter.poll() == 0

    def test_add_remove_modify_semantics(self):
        feed = RSSFeedSimulator("http://news.example/rss", initial_entries=3,
                                add_rate=1.0, remove_rate=1.0, modify_rate=1.0, seed=4)
        alerter = RSSFeedAlerter("news.example", feed.feed_url, feed.snapshot)
        sink = collect(alerter.output)
        alerter.poll()
        feed.tick()
        produced = alerter.poll()
        assert produced == len(sink)
        kinds = {item.attrib["kind"] for item in sink}
        assert kinds <= {"add", "remove", "modify"}
        assert kinds  # something changed
        for item in sink:
            assert item.attrib["feed"] == feed.feed_url
            assert item.find("entry") is not None

    def test_modify_alert_carries_previous_version(self):
        feed = RSSFeedSimulator("u", initial_entries=2, add_rate=0.0,
                                remove_rate=0.0, modify_rate=1.0, seed=1)
        alerter = RSSFeedAlerter("p", "u", feed.snapshot)
        sink = collect(alerter.output)
        alerter.poll()
        feed.tick()
        alerter.poll()
        modified = [item for item in sink if item.attrib["kind"] == "modify"]
        assert modified
        assert modified[0].find("previous") is not None


class TestWebPageAlerter:
    def test_crawl_detects_changes(self):
        site = WebPageSimulator("example.org", n_pages=3, change_rate=1.0, seed=1)
        alerter = WebPageAlerter("example.org")
        for url in site.urls:
            alerter.watch(url, site.source_for(url))
        sink = collect(alerter.output)
        assert alerter.crawl() == 0  # baseline
        site.tick()
        assert alerter.crawl() == 3
        assert all(item.find("delta") is not None for item in sink)

    def test_unchanged_pages_produce_no_alert(self):
        site = WebPageSimulator("example.org", n_pages=2, change_rate=0.0, seed=1)
        alerter = WebPageAlerter("example.org", include_delta=False)
        for url in site.urls:
            alerter.watch(url, site.source_for(url))
        alerter.crawl()
        site.tick()
        assert alerter.crawl() == 0

    def test_unwatch(self):
        site = WebPageSimulator("example.org", n_pages=2, change_rate=1.0, seed=1)
        alerter = WebPageAlerter("example.org")
        for url in site.urls:
            alerter.watch(url, site.source_for(url))
        alerter.unwatch(site.urls[0])
        assert len(alerter.watched_urls) == 1

    def test_page_simulator_validation(self):
        with pytest.raises(ValueError):
            WebPageSimulator("s", n_pages=0)


class TestAXMLRepositoryAlerter:
    def test_insert_replace_delete_alerts(self):
        repository = AXMLRepository("p1")
        alerter = AXMLRepositoryAlerter("p1", repository)
        sink = collect(alerter.output)
        repository.store("doc1", Element("data", text="v1"))
        repository.store("doc1", Element("data", text="v2"))
        assert repository.delete("doc1")
        assert not repository.delete("doc1")
        assert [item.attrib["kind"] for item in sink] == ["insert", "replace", "delete"]
        assert sink[0].find("content") is not None
        assert sink[2].find("content") is None
        assert repository.document_names == []

    def test_repository_get(self):
        repository = AXMLRepository("p1")
        repository.store("doc", Element("x"))
        assert repository.get("doc").tag == "x"
        assert repository.get("missing") is None


class TestAreRegisteredAlerter:
    def test_membership_alerts(self):
        index = KadopIndex()
        alerter = AreRegisteredAlerter("dht.example", index)
        sink = collect(alerter.output)
        index.join_peer("client1")
        index.leave_peer("client1")
        assert [item.attrib["kind"] for item in sink] == ["join", "leave"]
        assert sink[0].find("p-join").text == "client1"
        assert sink[1].find("p-leave").text == "client1"
