"""Tests for the Element tree model."""

import pytest

from repro.xmlmodel import Element, element, text_of


def make_alert() -> Element:
    alert = Element("alert", {"callId": "42", "caller": "http://a.com"})
    alert.append(Element("payload", text="hello"))
    alert.append(Element("payload", text="world"))
    alert.append(Element("meta", {"k": "v"}))
    return alert


class TestConstruction:
    def test_basic_fields(self):
        node = Element("alert", {"callId": 42}, text="body")
        assert node.tag == "alert"
        assert node.attrib == {"callId": "42"}
        assert node.text == "body"
        assert node.children == []

    def test_rejects_empty_tag(self):
        with pytest.raises(ValueError):
            Element("")

    def test_rejects_non_string_tag(self):
        with pytest.raises(ValueError):
            Element(None)  # type: ignore[arg-type]

    def test_rejects_non_element_child(self):
        with pytest.raises(TypeError):
            Element("a", children=["not an element"])  # type: ignore[list-item]

    def test_append_rejects_non_element(self):
        with pytest.raises(TypeError):
            Element("a").append("x")  # type: ignore[arg-type]

    def test_element_helper(self):
        node = element("incident", "text body", type="slowAnswer")
        assert node.tag == "incident"
        assert node.attrib == {"type": "slowAnswer"}
        assert node.text == "text body"

    def test_append_returns_child(self):
        parent = Element("a")
        child = parent.append(Element("b"))
        assert child.tag == "b"
        assert parent.children == [child]

    def test_extend(self):
        parent = Element("a")
        parent.extend([Element("b"), Element("c")])
        assert [c.tag for c in parent.children] == ["b", "c"]

    def test_set_and_get(self):
        node = Element("a")
        node.set("x", 10)
        assert node.get("x") == "10"
        assert node.get("missing") is None
        assert node.get("missing", "d") == "d"


class TestNavigation:
    def test_find_first_match(self):
        alert = make_alert()
        assert alert.find("payload").text == "hello"
        assert alert.find("absent") is None

    def test_findall(self):
        alert = make_alert()
        assert len(alert.findall("payload")) == 2
        assert alert.findall("absent") == []

    def test_iter_all(self):
        alert = make_alert()
        assert [n.tag for n in alert.iter()] == ["alert", "payload", "payload", "meta"]

    def test_iter_with_tag(self):
        alert = make_alert()
        assert len(list(alert.iter("payload"))) == 2

    def test_descendants_excludes_self(self):
        alert = make_alert()
        assert [n.tag for n in alert.descendants()] == ["payload", "payload", "meta"]

    def test_child_text(self):
        alert = make_alert()
        assert alert.child_text("payload") == "hello"
        assert alert.child_text("meta", "fallback") == "fallback"
        assert alert.child_text("absent") is None

    def test_indexing_len_iter(self):
        alert = make_alert()
        assert len(alert) == 3
        assert alert[0].tag == "payload"
        assert [c.tag for c in alert] == ["payload", "payload", "meta"]


class TestMeasurement:
    def test_size(self):
        assert make_alert().size() == 4
        assert Element("leaf").size() == 1

    def test_depth(self):
        nested = Element("a", children=[Element("b", children=[Element("c")])])
        assert nested.depth() == 3
        assert Element("leaf").depth() == 1

    def test_weight_positive_and_monotone(self):
        small = Element("a")
        big = make_alert()
        assert small.weight() > 0
        assert big.weight() > small.weight()


class TestEqualityAndCopy:
    def test_copy_is_deep_and_equal(self):
        alert = make_alert()
        clone = alert.copy()
        assert clone == alert
        clone.children[0].text = "changed"
        assert clone != alert
        assert alert.children[0].text == "hello"

    def test_equality_ignores_attr_order(self):
        a = Element("x", {"p": "1", "q": "2"})
        b = Element("x", {"q": "2", "p": "1"})
        assert a == b

    def test_inequality_on_tag_attr_text_children(self):
        base = Element("x", {"a": "1"}, text="t")
        assert base != Element("y", {"a": "1"}, text="t")
        assert base != Element("x", {"a": "2"}, text="t")
        assert base != Element("x", {"a": "1"}, text="other")
        assert base != Element("x", {"a": "1"}, [Element("c")], text="t")

    def test_none_text_equals_empty_text(self):
        assert Element("x") == Element("x", text=None)

    def test_structural_key_hashable(self):
        alert = make_alert()
        assert hash(alert) == hash(alert.copy())
        assert {alert, alert.copy()} == {alert}

    def test_not_equal_to_other_types(self):
        assert Element("x") != "x"


def test_text_of_concatenates_depth_first():
    root = Element("a", text="1", children=[
        Element("b", text="2"),
        Element("c", children=[Element("d", text="3")]),
    ])
    assert text_of(root) == "123"
    assert text_of(None) == ""
