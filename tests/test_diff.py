"""Tests for snapshot diffing (Web page / RSS alerter substrate)."""

from repro.xmlmodel import Element, diff_trees, parse_xml
from repro.xmlmodel.diff import default_key


def feed(*entries: Element) -> Element:
    return Element("feed", children=list(entries))


def entry(guid: str, title: str) -> Element:
    return Element(
        "entry", {"guid": guid}, [Element("title", text=title)]
    )


class TestDiffTrees:
    def test_no_change(self):
        old = feed(entry("1", "a"), entry("2", "b"))
        new = feed(entry("1", "a"), entry("2", "b"))
        delta = diff_trees(old, new)
        assert delta.is_empty
        assert delta.summary() == {"added": 0, "removed": 0, "modified": 0, "unchanged": 2}

    def test_added_entry(self):
        delta = diff_trees(feed(entry("1", "a")), feed(entry("1", "a"), entry("2", "b")))
        assert len(delta.added) == 1
        assert delta.added[0].attrib["guid"] == "2"

    def test_removed_entry(self):
        delta = diff_trees(feed(entry("1", "a"), entry("2", "b")), feed(entry("2", "b")))
        assert len(delta.removed) == 1
        assert delta.removed[0].attrib["guid"] == "1"

    def test_modified_entry(self):
        delta = diff_trees(feed(entry("1", "a")), feed(entry("1", "changed")))
        assert len(delta.modified) == 1
        old, new = delta.modified[0]
        assert old.find("title").text == "a"
        assert new.find("title").text == "changed"

    def test_duplicate_keys_aligned_positionally(self):
        old = feed(entry("1", "a"), entry("1", "b"))
        new = feed(entry("1", "a"), entry("1", "b2"), entry("1", "c"))
        delta = diff_trees(old, new)
        assert len(delta.modified) == 1
        assert len(delta.added) == 1
        assert len(delta.unchanged) == 1

    def test_to_element_encoding(self):
        delta = diff_trees(feed(entry("1", "a")), feed(entry("2", "b")))
        encoded = delta.to_element()
        assert encoded.tag == "delta"
        assert encoded.attrib["added"] == "1"
        assert encoded.attrib["removed"] == "1"
        assert encoded.find("added") is not None
        assert encoded.find("removed") is not None

    def test_modified_encoding_has_old_and_new(self):
        delta = diff_trees(feed(entry("1", "a")), feed(entry("1", "b")))
        encoded = delta.to_element()
        modified = encoded.find("modified")
        assert modified.find("old") is not None
        assert modified.find("new") is not None


class TestDefaultKey:
    def test_prefers_id_like_attributes(self):
        assert default_key(Element("item", {"guid": "g1"})) == "item#g1"
        assert default_key(Element("item", {"id": "i1"})) == "item#i1"

    def test_falls_back_to_title(self):
        node = Element("item", children=[Element("title", text="hello")])
        assert default_key(node) == "item#hello"

    def test_falls_back_to_text(self):
        assert default_key(Element("p", text="body")) == "p#body"

    def test_custom_key_function(self):
        old = feed(Element("row", {"x": "1"}, text="a"))
        new = feed(Element("row", {"x": "1"}, text="b"))
        delta = diff_trees(old, new, key=lambda n: n.attrib["x"])
        assert len(delta.modified) == 1


def test_rss_like_snapshot_diff():
    old = parse_xml(
        "<rss><channel>"
        "<item><guid>1</guid><title>old news</title></item>"
        "<item><guid>2</guid><title>stays</title></item>"
        "</channel></rss>"
    )
    new = parse_xml(
        "<rss><channel>"
        "<item><guid>2</guid><title>stays</title></item>"
        "<item><guid>3</guid><title>fresh</title></item>"
        "</channel></rss>"
    )
    delta = diff_trees(old.find("channel"), new.find("channel"))
    assert len(delta.added) == 1
    assert len(delta.removed) == 1
    assert len(delta.unchanged) == 1
