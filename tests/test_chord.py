"""Tests for the Chord-style DHT ring."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dht import ChordRing, hash_key, ring_distance
from repro.dht.hashing import M_BITS, in_interval


class TestHashing:
    def test_hash_is_deterministic_and_bounded(self):
        assert hash_key("abc") == hash_key("abc")
        assert 0 <= hash_key("abc") < (1 << M_BITS)
        assert hash_key("abc", bits=8) < 256

    def test_different_keys_differ(self):
        assert hash_key("peer1") != hash_key("peer2")

    def test_ring_distance(self):
        assert ring_distance(10, 20, bits=8) == 10
        assert ring_distance(250, 5, bits=8) == 11
        assert ring_distance(7, 7, bits=8) == 0

    def test_in_interval_plain_and_wrapping(self):
        assert in_interval(5, 1, 10, bits=8)
        assert not in_interval(1, 1, 10, bits=8)  # half-open at start
        assert in_interval(10, 1, 10, bits=8)  # closed at end
        assert in_interval(3, 250, 10, bits=8)  # wraps
        assert in_interval(255, 250, 10, bits=8)
        assert not in_interval(100, 250, 10, bits=8)
        assert in_interval(42, 7, 7, bits=8)  # full ring


class TestMembership:
    def test_join_and_len(self):
        ring = ChordRing()
        ring.join("a")
        ring.join("b")
        assert len(ring) == 2
        assert "a" in ring and "b" in ring
        assert ring.node_ids == ["a", "b"]

    def test_duplicate_join_rejected(self):
        ring = ChordRing()
        ring.join("a")
        with pytest.raises(ValueError):
            ring.join("a")

    def test_leave_unknown_raises(self):
        ring = ChordRing()
        with pytest.raises(KeyError):
            ring.leave("ghost")

    def test_membership_log(self):
        ring = ChordRing()
        ring.join("a")
        ring.join("b")
        ring.leave("a")
        assert ring.membership_log == [("join", "a"), ("join", "b"), ("leave", "a")]


class TestStorage:
    def test_put_get_remove(self):
        ring = ChordRing()
        for name in ("a", "b", "c"):
            ring.join(name)
        ring.put("key1", "value1")
        value, result = ring.get("key1")
        assert value == "value1"
        assert result.node_id in ring.node_ids
        assert ring.remove("key1")
        assert ring.get("key1")[0] is None
        assert not ring.remove("key1")

    def test_lookup_on_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ChordRing().lookup("key")

    def test_single_node_owns_everything(self):
        ring = ChordRing()
        ring.join("only")
        for i in range(20):
            ring.put(f"k{i}", i)
        assert ring.storage_distribution() == {"only": 20}

    def test_keys_survive_join(self):
        ring = ChordRing()
        ring.join("a")
        keys = [f"k{i}" for i in range(50)]
        for key in keys:
            ring.put(key, key.upper())
        for name in ("b", "c", "d", "e"):
            ring.join(name)
        for key in keys:
            assert ring.get(key)[0] == key.upper()
        # keys are actually spread over several nodes
        occupied = [n for n, count in ring.storage_distribution().items() if count]
        assert len(occupied) > 1

    def test_keys_survive_leave(self):
        ring = ChordRing()
        for name in ("a", "b", "c", "d"):
            ring.join(name)
        keys = [f"k{i}" for i in range(50)]
        for key in keys:
            ring.put(key, key)
        ring.leave("b")
        ring.leave("c")
        for key in keys:
            assert ring.get(key)[0] == key

    def test_lookup_consistent_from_any_start(self):
        ring = ChordRing()
        for name in ("a", "b", "c", "d", "e", "f"):
            ring.join(name)
        ring.put("the-key", 1)
        owners = {ring.lookup("the-key", start=s).node_id for s in ring.node_ids}
        assert len(owners) == 1


class TestRouting:
    def test_hops_grow_logarithmically(self):
        ring = ChordRing()
        for i in range(128):
            ring.join(f"node{i}")
        hops = []
        for i in range(200):
            result = ring.lookup(f"key{i}", start=f"node{i % 128}")
            hops.append(result.hops)
        average = sum(hops) / len(hops)
        # Chord bound: O(log2 N) = 7 for 128 nodes; allow slack but reject linear
        assert average <= math.log2(128) + 2
        assert max(hops) <= 2 * math.log2(128) + 4

    def test_average_hops_counter(self):
        ring = ChordRing()
        for i in range(16):
            ring.join(f"n{i}")
        assert ring.average_hops == 0.0
        for i in range(10):
            ring.lookup(f"k{i}")
        assert ring.average_hops >= 0.0
        assert ring.lookup_count == 10

    def test_lookup_path_starts_at_start_node(self):
        ring = ChordRing()
        for i in range(8):
            ring.join(f"n{i}")
        result = ring.lookup("some-key", start="n3")
        assert result.path[0] == "n3"
        assert result.path[-1] == result.node_id


@settings(max_examples=25, deadline=None)
@given(
    node_names=st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=12),
    keys=st.lists(st.text(alphabet="klmnop", min_size=1, max_size=8), min_size=1, max_size=20, unique=True),
)
def test_property_every_stored_key_is_retrievable(node_names, keys):
    ring = ChordRing()
    for name in sorted(node_names):
        ring.join(name)
    for key in keys:
        ring.put(key, f"value-{key}")
    for key in keys:
        assert ring.get(key)[0] == f"value-{key}"


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.text(alphabet="xyz0123", min_size=1, max_size=8), min_size=1, max_size=15, unique=True),
    leavers=st.integers(min_value=0, max_value=3),
)
def test_property_keys_survive_churn(keys, leavers):
    ring = ChordRing()
    names = [f"peer{i}" for i in range(6)]
    for name in names:
        ring.join(name)
    for key in keys:
        ring.put(key, key)
    for name in names[:leavers]:
        ring.leave(name)
    ring.join("latecomer")
    for key in keys:
        assert ring.get(key)[0] == key
