"""Differential suite: compiled execution pinned equivalent to interpreted.

``P2PMSystem(execution_mode="compiled")`` replaces interpreted operator
chains with fused pipeline closures plus a system-wide materialized
expression table.  Everything here asserts the replacement is *externally
invisible*:

* every catalog chaos scenario produces a byte-identical event-trace
  fingerprint in both modes (detector and oracle failure modes alike);
* the 4 pinned golden fingerprints of the oracle scenarios hold verbatim in
  compiled mode;
* the meteo and edos workloads deliver identical results;
* plan-copy and reuse interactions can never serve a stale fused closure.
"""

import random

import pytest

from repro.algebra.plan import ALERTER, FILTER, GROUP, RESTRUCTURE, PlanNode
from repro.compile import CompiledPipeline, CompiledStage, MaterializedTable
from repro.filtering.conditions import FilterSubscription, SimpleCondition
from repro.filtering.yfilter import compile_tree_predicate
from repro.monitor import P2PMSystem
from repro.monitor.deployment import Deployer
from repro.scenarios import make_scenario, scenario_names
from repro.workloads import EdosNetwork, MeteoScenario
from repro.workloads.chaos_feed import CHAOS_FUNCTION
from repro.workloads.soap_traffic import SoapCall
from repro.xmlmodel import XPath
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import Element

#: The golden traces pinned by test_e2e_fastpath (oracle failure mode).
#: Compiled mode must reproduce them byte for byte -- duplicated here on
#: purpose so a re-pin over there cannot silently loosen this suite.
PINNED_GOLDEN = {
    ("flaky-network", 0): (
        "36517f09c0087bb62f8357b9b4158556e064a82c8ec635e88b27cedec60e1735"
    ),
    ("partition-heal", 7): (
        "14fb7e0c7bb6665befab9b72dc3146d628bc4f1001c904aea5be50afd4c55563"
    ),
    ("lossy-network", 0): (
        "1dfc3881162bba9eefbf37cebb15a79fdeaf63450b9abd9d633d7dbca238dcdf"
    ),
    ("churn-soak", 42): (
        "d9e1656c98e27aaee85be891ec2af41c08f5ef1245a25648fd0148849db22091"
    ),
}


class TestCatalogDifferential:
    @pytest.mark.parametrize("name", scenario_names())
    def test_compiled_trace_matches_interpreted(self, name: str):
        interpreted = make_scenario(name, seed=0).run()
        compiled = make_scenario(name, seed=0, execution_mode="compiled").run()
        assert compiled.ok, [inv for inv in compiled.invariants if not inv.ok]
        assert compiled.received == interpreted.received
        assert compiled.fingerprint == interpreted.fingerprint

    @pytest.mark.parametrize(
        "name,seed",
        [
            ("worker-crash", 7),
            ("worker-crash", 42),
            ("lossy-network", 7),
            ("lossy-network", 42),
        ],
    )
    def test_chaos_scenarios_match_across_extra_seeds(self, name: str, seed: int):
        # the catalog sweep above pins seed 0; probe-side fusion must also
        # hold when crash recovery / message loss reshuffle delivery orders
        interpreted = make_scenario(name, seed=seed).run()
        compiled = make_scenario(name, seed=seed, execution_mode="compiled").run()
        assert compiled.ok, [inv for inv in compiled.invariants if not inv.ok]
        assert compiled.received == interpreted.received
        assert compiled.fingerprint == interpreted.fingerprint

    @pytest.mark.parametrize("name,seed", sorted(PINNED_GOLDEN))
    def test_compiled_reproduces_pinned_oracle_goldens(self, name: str, seed: int):
        result = make_scenario(
            name, seed=seed, failure_mode="oracle", execution_mode="compiled"
        ).run()
        assert result.ok, [inv for inv in result.invariants if not inv.ok]
        assert result.fingerprint == PINNED_GOLDEN[(name, seed)]


class TestWorkloadDifferential:
    def test_meteo_incidents_identical(self):
        def incidents(mode: str) -> list[str]:
            scenario = MeteoScenario(
                threshold=10.0, slow_fraction=0.2, seed=11, execution_mode=mode
            )
            scenario.deploy()
            scenario.run_traffic(300)
            return [to_xml(item) for item in scenario.incidents()]

        interpreted = incidents("interpreted")
        compiled = incidents("compiled")
        assert compiled, "the workload should produce incidents"
        assert compiled == interpreted

    def test_edos_failures_identical(self):
        def failures(mode: str) -> list[str]:
            system = P2PMSystem(seed=23, execution_mode=mode)
            edos = EdosNetwork(n_mirrors=2, n_clients=10, failure_rate=0.3, seed=23)
            for mirror in edos.mirrors:
                peer = system.add_peer(mirror)
                peer.add_alerter_hook(
                    lambda alerter: edos.attach_alerter(alerter)
                    if hasattr(alerter, "observe_call")
                    else None
                )
            monitor = system.add_peer("monitor.edos.org")
            task = monitor.subscribe(
                """
                for $c in inCOM(<p>mirror0.edos.org</p> <p>mirror1.edos.org</p>)
                where $c.callMethod = "DownloadPackage" and $c.status = "fault"
                return <failure><mirror>{$c.callee}</mirror><client>{$c.caller}</client></failure>
                by publish as channel "edosFailures";
                """,
                sub_id="edos-failures",
                max_results=4096,
            )
            system.run()
            edos.run(400)
            system.run()
            return [to_xml(item) for item in task.results()]

        interpreted = failures("interpreted")
        compiled = failures("compiled")
        assert compiled, "a 30% failure rate should produce failures"
        assert compiled == interpreted


def _single_peer(mode: str) -> tuple:
    system = P2PMSystem(seed=1, execution_mode=mode)
    peer = system.add_peer("solo")
    return system, peer


def _chaos_subscription(peer, sub_id: str, template: str, threshold: int = 1):
    text = (
        f'for $x in {CHAOS_FUNCTION}(<p>solo</p>) '
        f'where $x.kind = "chaos" and $x.n >= {threshold} return {template}'
    )
    got: list[str] = []
    handle = peer.subscribe(text, sub_id=sub_id)
    handle.on_result(lambda item, bucket=got: bucket.append(to_xml(item)))
    return handle, got


class TestFusedPipelines:
    def test_filter_restructure_fuses_into_one_segment(self):
        system, peer = _single_peer("compiled")
        handle, got = _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        pipelines = system.compiled_pipelines()
        assert len(pipelines) == 1
        assert [stage.kind for stage in pipelines[0].stages] == [FILTER, RESTRUCTURE]
        alerter = peer.alerter(CHAOS_FUNCTION)
        for n in range(10):
            alerter.emit_numbered(n)
        system.run()
        assert len(got) == 9  # n >= 1 filters out n=0
        assert pipelines[0].items_in == 10
        assert pipelines[0].items_out == 9
        # the intermediate filter boundary is dark: fused straight through
        stats = handle.stats()["compile"]
        assert stats["mode"] == "compiled"
        assert stats["segments_fused"] == 1
        assert stats["stages_fused"] == 2

    def test_cse_shares_restructure_across_subscriptions(self):
        system, peer = _single_peer("compiled")
        _, got_a = _chaos_subscription(
            peer, "qa", "<seen><n>{$x.n}</n></seen>", threshold=0
        )
        _, got_b = _chaos_subscription(
            peer, "qb", "<seen><n>{$x.n}</n></seen>", threshold=1
        )
        system.run()
        alerter = peer.alerter(CHAOS_FUNCTION)
        for n in range(20):
            alerter.emit_numbered(n)
        system.run()
        assert len(got_a) == 20 and len(got_b) == 19
        table = system.materialized
        assert table is not None and table.hits > 0, (
            "identical templates across subscriptions must share evaluations"
        )

    def test_reuse_of_dark_boundary_flips_it_live(self):
        # a second subscription reusing the (dark) intermediate filter stream
        # must receive every later item, identically in both modes
        def run(mode: str):
            system, peer = _single_peer(mode)
            _, got_a = _chaos_subscription(peer, "qa", "<seen><n>{$x.n}</n></seen>")
            system.run()
            alerter = peer.alerter(CHAOS_FUNCTION)
            for n in range(5):
                alerter.emit_numbered(n)
            system.run()
            _, got_b = _chaos_subscription(peer, "qb", "<other><n>{$x.n}</n></other>")
            system.run()
            for n in range(5, 10):
                alerter.emit_numbered(n)
            system.run()
            return got_a, got_b

        interpreted = run("interpreted")
        compiled = run("compiled")
        assert compiled == interpreted
        assert len(compiled[1]) == 5

    def test_cancel_keeps_shared_boundary_flowing(self):
        def run(mode: str):
            system, peer = _single_peer(mode)
            handle_a, got_a = _chaos_subscription(peer, "qa", "<seen><n>{$x.n}</n></seen>")
            system.run()
            alerter = peer.alerter(CHAOS_FUNCTION)
            for n in range(3):
                alerter.emit_numbered(n)
            system.run()
            _, got_b = _chaos_subscription(peer, "qb", "<other><n>{$x.n}</n></other>")
            system.run()
            handle_a.cancel()
            system.run()
            for n in range(3, 6):
                alerter.emit_numbered(n)
            system.run()
            return got_a, got_b

        assert run("compiled") == run("interpreted")

    def test_compile_report_is_printable(self):
        system, peer = _single_peer("compiled")
        _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        report = system.compile_report()
        assert "execution mode: compiled" in report
        assert "segments fused" in report
        interpreted_system, _ = _single_peer("interpreted")
        assert "interpreted" in interpreted_system.compile_report()

    def test_invalid_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution_mode"):
            P2PMSystem(execution_mode="jit")


class TestCopySafety:
    def test_plan_copy_drops_compiled_stage(self):
        system, peer = _single_peer("compiled")
        _, _ = _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        record = peer.manager.database.get("q0")
        plan = record.task.plan
        staged = [
            node for node in plan.iter_nodes()
            if isinstance(node._stage, CompiledStage)
        ]
        assert staged, "deployment must have attached compiled stages"
        for node in staged:
            clone = node.copy()
            # the signature memo is carried (pure function of params)...
            assert clone._detail == node._detail
            # ...but the compiled stage is re-derived, never inherited
            assert clone._stage is None

    def test_stage_rebuilt_for_foreign_table(self):
        # a stage pinned on a node only short-circuits recompilation for the
        # same system's materialized table; a second system must build its own
        system_a, peer_a = _single_peer("compiled")
        _chaos_subscription(peer_a, "q0", "<seen><n>{$x.n}</n></seen>")
        system_a.run()
        system_b, peer_b = _single_peer("compiled")
        _chaos_subscription(peer_b, "q0", "<seen><n>{$x.n}</n></seen>")
        system_b.run()
        tables = set()
        for system in (system_a, system_b):
            for pipeline in system.compiled_pipelines():
                assert isinstance(pipeline, CompiledPipeline)
                for stage in pipeline.stages:
                    assert isinstance(stage.table, MaterializedTable)
                    assert stage.table is system.materialized
                    tables.add(id(stage.table))
        assert len(tables) == 2


def _soap_alert_items(n: int, seed: int = 5) -> list[Element]:
    """Soap-style alerts with children: the tree-pattern differential corpus."""
    from repro.alerters.ws import soap_alert

    rng = random.Random(seed)
    methods = ["GetTemperature", "GetHumidity", "Invoice"]
    items = []
    for index in range(n):
        call = SoapCall(
            call_id=f"c{index}",
            caller=rng.choice(["solo", "client.net"]),
            callee=rng.choice(["meteo.com", "tele.com"]),
            method=rng.choice(methods),
            call_timestamp=float(index),
            response_timestamp=float(index) + rng.random(),
            status="fault" if rng.random() < 0.4 else "ok",
            parameters={"k": str(index)} if rng.random() < 0.7 else {},
        )
        items.append(soap_alert(call, "out"))
    return items


class TestTreePatternFusion:
    TREE_PATHS = [
        "//Body",
        "//error",
        "//Envelope/Body",
        "//Body//param",
        "/alert/Envelope",
        "/alert/error",
    ]

    def test_compiled_tree_predicate_matches_extensional_oracle(self):
        rng = random.Random(3)
        items = _soap_alert_items(60)
        methods = ["GetTemperature", "GetHumidity", "Invoice"]
        for index in range(40):
            simple = [SimpleCondition("callMethod", "=", rng.choice(methods))]
            if rng.random() < 0.5:
                simple.append(SimpleCondition("status", "=", "fault"))
            queries = [XPath.compile(rng.choice(self.TREE_PATHS))]
            if rng.random() < 0.4:
                queries.append(XPath.compile(rng.choice(self.TREE_PATHS)))
            subscription = FilterSubscription(f"t{index}", simple, queries)
            predicate = compile_tree_predicate(subscription)
            for item in items:
                assert predicate(item) == subscription.matches_extensionally(item), (
                    f"{subscription.sub_id}: fused tree predicate diverges from "
                    f"the extensional oracle on {to_xml(item)[:120]}"
                )

    def _run_tree_subscription(self, mode: str):
        system = P2PMSystem(seed=1, execution_mode=mode)
        peer = system.add_peer("solo")
        text = (
            'for $c in outCOM(<p>solo</p>) '
            'where $c.callMethod = "Invoice" and $c/alert/Envelope/Body '
            "and $c/alert/error "
            "return <bad><callee>{$c.callee}</callee></bad>"
        )
        got: list[str] = []
        handle = peer.subscribe(text, sub_id="tp0")
        handle.on_result(lambda item: got.append(to_xml(item)))
        system.run()
        alerter = peer.alerter("outCOM")
        for index in range(12):
            alerter.observe_call(
                SoapCall(
                    call_id=f"c{index}",
                    caller="solo",
                    callee="tele.com",
                    method="Invoice" if index % 2 == 0 else "GetTemperature",
                    call_timestamp=float(index),
                    response_timestamp=float(index) + 0.5,
                    status="fault" if index % 3 == 0 else "ok",
                    parameters={"k": str(index)},
                )
            )
        system.run()
        return system, handle, got

    def test_tree_pattern_subscription_fuses_and_matches_interpreted(self):
        _, _, interpreted = self._run_tree_subscription("interpreted")
        system, handle, compiled = self._run_tree_subscription("compiled")
        assert compiled and compiled == interpreted
        # the complex-query FILTER must now fuse: one pipeline, no FILTER
        # fallback, and the tree-pattern expressions in the stage signature
        pipelines = system.compiled_pipelines()
        assert len(pipelines) == 1
        assert [stage.kind for stage in pipelines[0].stages] == [FILTER, RESTRUCTURE]
        assert "$c/alert/Envelope/Body" in pipelines[0].stages[0].signature
        stats = handle.stats()["compile"]
        assert stats["fallbacks"].get(FILTER) is None
        assert stats["segments_fused"] == 1


class TestStatefulConsumerFusion:
    JOIN_TEXT = (
        f'for $x in {CHAOS_FUNCTION}(<p>solo</p>), '
        f'$y in {CHAOS_FUNCTION}(<p>solo</p>) '
        'where $x.kind = "chaos" and $x.n >= 2 and $x.n = $y.n '
        "return <pair><n>{$x.n}</n><m>{$y.n}</m></pair>"
    )

    def _run_join(self, mode: str, batch: bool):
        system = P2PMSystem(seed=1, execution_mode=mode)
        peer = system.add_peer("solo")
        got: list[str] = []
        handle = peer.subscribe(self.JOIN_TEXT, sub_id="j0")
        handle.on_result(lambda item: got.append(to_xml(item)))
        system.run()
        alerter = peer.alerter(CHAOS_FUNCTION)
        if batch:
            alerter.output.emit_many(
                [
                    Element("alert", {"kind": "chaos", "source": "solo", "n": str(n)})
                    for n in range(8)
                ]
            )
        else:
            for n in range(8):
                alerter.emit_numbered(n)
        system.run()
        return system, handle, got

    @pytest.mark.parametrize("batch", [False, True])
    def test_join_probe_fusion_matches_interpreted(self, batch: bool):
        _, _, interpreted = self._run_join("interpreted", batch)
        system, handle, compiled = self._run_join("compiled", batch)
        assert compiled and compiled == interpreted
        stats = handle.stats()["compile"]
        assert stats["consumers_fused"].get("join", 0) >= 1

    def _run_group(self, mode: str):
        # GROUP has no P2PML surface syntax: deploy a programmatic plan
        # through the same Deployer the manager uses
        system = P2PMSystem(seed=1, execution_mode=mode)
        peer = system.add_peer("solo")
        subscription = FilterSubscription(
            "g0", [SimpleCondition("kind", "=", "chaos")], []
        )
        plan = PlanNode(
            GROUP,
            {"key": "n", "every": 4, "var": "x"},
            [
                PlanNode(
                    FILTER,
                    {"subscription": subscription, "var": "x"},
                    [
                        PlanNode(
                            ALERTER,
                            {"alerter": CHAOS_FUNCTION},
                            [],
                            placement="solo",
                        )
                    ],
                    placement="solo",
                )
            ],
            placement="solo",
        )
        deployer = Deployer(system, publish_replicas=system.publish_replicas)
        task = deployer.deploy(plan, "g0", manager_peer="solo")
        got: list[str] = []
        task.delivery.subscribe(lambda item: got.append(to_xml(item)))
        system.run()
        alerter = peer.alerter(CHAOS_FUNCTION)
        for n in range(10):
            alerter.emit_numbered(n % 3)
        system.run()
        return system, got

    def test_group_probe_fusion_matches_interpreted(self):
        _, interpreted = self._run_group("interpreted")
        system, compiled = self._run_group("compiled")
        assert compiled and compiled == interpreted
        snapshot = system.compiler.stats.snapshot()
        assert snapshot["consumers_fused"].get("group", 0) >= 1
        pipelines = system.compiled_pipelines()
        assert any(
            pipeline.describe()["consumer_fused"] == "Group"
            for pipeline in pipelines
        )


class TestCompileStats:
    def test_stage_invocation_counters_split_batch_and_item(self):
        system = P2PMSystem(seed=1, execution_mode="compiled")
        peer = system.add_peer("solo")
        got: list[str] = []
        handle = peer.subscribe(
            f'for $x in {CHAOS_FUNCTION}(<p>solo</p>) '
            'where $x.kind = "chaos" return <seen><n>{$x.n}</n></seen>',
            sub_id="q0",
        )
        handle.on_result(lambda item: got.append(to_xml(item)))
        system.run()
        alerter = peer.alerter(CHAOS_FUNCTION)
        alerter.emit_numbered(0)
        alerter.output.emit_many(
            [
                Element("alert", {"kind": "chaos", "source": "solo", "n": str(n)})
                for n in range(1, 6)
            ]
        )
        system.run()
        assert len(got) == 6
        invocations = handle.stats()["compile"]["stage_invocations"]
        assert invocations["batch"] >= 2  # both fused stages saw the burst
        assert invocations["batch_items"] >= 10
        assert invocations["item"] >= 2  # the single emit ran per-item

    def test_report_fallback_lines_sorted_and_unique(self):
        system = P2PMSystem(seed=1, execution_mode="compiled")
        peer = system.add_peer("solo")
        for index in range(3):
            peer.subscribe(
                f'for $x in {CHAOS_FUNCTION}(<p>solo</p>) '
                'where $x.kind = "chaos" return <seen><n>{$x.n}</n></seen> '
                f'by publish as channel "chan{index}";',
                sub_id=f"q{index}",
            )
        system.run()
        snapshot = system.compiler.stats.snapshot()
        kinds = list(snapshot["fallbacks"])
        assert kinds == sorted(kinds)
        for reasons in snapshot["fallbacks"].values():
            assert list(reasons) == sorted(reasons)
        report = system.compile_report()
        fallback_lines = [
            line for line in report.splitlines() if line.startswith("fallback ")
        ]
        assert fallback_lines == sorted(fallback_lines)
        assert len(fallback_lines) == len(set(fallback_lines))
        # the three identical publish fallbacks aggregate into one line
        assert "fallback publish: delivery-root x3" in report
