"""Differential suite: compiled execution pinned equivalent to interpreted.

``P2PMSystem(execution_mode="compiled")`` replaces interpreted operator
chains with fused pipeline closures plus a system-wide materialized
expression table.  Everything here asserts the replacement is *externally
invisible*:

* every catalog chaos scenario produces a byte-identical event-trace
  fingerprint in both modes (detector and oracle failure modes alike);
* the 4 pinned golden fingerprints of the oracle scenarios hold verbatim in
  compiled mode;
* the meteo and edos workloads deliver identical results;
* plan-copy and reuse interactions can never serve a stale fused closure.
"""

import pytest

from repro.algebra.plan import FILTER, RESTRUCTURE
from repro.compile import CompiledPipeline, CompiledStage, MaterializedTable
from repro.monitor import P2PMSystem
from repro.scenarios import make_scenario, scenario_names
from repro.workloads import EdosNetwork, MeteoScenario
from repro.workloads.chaos_feed import CHAOS_FUNCTION
from repro.xmlmodel.serialize import to_xml

#: The golden traces pinned by test_e2e_fastpath (oracle failure mode).
#: Compiled mode must reproduce them byte for byte -- duplicated here on
#: purpose so a re-pin over there cannot silently loosen this suite.
PINNED_GOLDEN = {
    ("flaky-network", 0): (
        "36517f09c0087bb62f8357b9b4158556e064a82c8ec635e88b27cedec60e1735"
    ),
    ("partition-heal", 7): (
        "14fb7e0c7bb6665befab9b72dc3146d628bc4f1001c904aea5be50afd4c55563"
    ),
    ("lossy-network", 0): (
        "1dfc3881162bba9eefbf37cebb15a79fdeaf63450b9abd9d633d7dbca238dcdf"
    ),
    ("churn-soak", 42): (
        "d9e1656c98e27aaee85be891ec2af41c08f5ef1245a25648fd0148849db22091"
    ),
}


class TestCatalogDifferential:
    @pytest.mark.parametrize("name", scenario_names())
    def test_compiled_trace_matches_interpreted(self, name: str):
        interpreted = make_scenario(name, seed=0).run()
        compiled = make_scenario(name, seed=0, execution_mode="compiled").run()
        assert compiled.ok, [inv for inv in compiled.invariants if not inv.ok]
        assert compiled.received == interpreted.received
        assert compiled.fingerprint == interpreted.fingerprint

    @pytest.mark.parametrize("name,seed", sorted(PINNED_GOLDEN))
    def test_compiled_reproduces_pinned_oracle_goldens(self, name: str, seed: int):
        result = make_scenario(
            name, seed=seed, failure_mode="oracle", execution_mode="compiled"
        ).run()
        assert result.ok, [inv for inv in result.invariants if not inv.ok]
        assert result.fingerprint == PINNED_GOLDEN[(name, seed)]


class TestWorkloadDifferential:
    def test_meteo_incidents_identical(self):
        def incidents(mode: str) -> list[str]:
            scenario = MeteoScenario(
                threshold=10.0, slow_fraction=0.2, seed=11, execution_mode=mode
            )
            scenario.deploy()
            scenario.run_traffic(300)
            return [to_xml(item) for item in scenario.incidents()]

        interpreted = incidents("interpreted")
        compiled = incidents("compiled")
        assert compiled, "the workload should produce incidents"
        assert compiled == interpreted

    def test_edos_failures_identical(self):
        def failures(mode: str) -> list[str]:
            system = P2PMSystem(seed=23, execution_mode=mode)
            edos = EdosNetwork(n_mirrors=2, n_clients=10, failure_rate=0.3, seed=23)
            for mirror in edos.mirrors:
                peer = system.add_peer(mirror)
                peer.add_alerter_hook(
                    lambda alerter: edos.attach_alerter(alerter)
                    if hasattr(alerter, "observe_call")
                    else None
                )
            monitor = system.add_peer("monitor.edos.org")
            task = monitor.subscribe(
                """
                for $c in inCOM(<p>mirror0.edos.org</p> <p>mirror1.edos.org</p>)
                where $c.callMethod = "DownloadPackage" and $c.status = "fault"
                return <failure><mirror>{$c.callee}</mirror><client>{$c.caller}</client></failure>
                by publish as channel "edosFailures";
                """,
                sub_id="edos-failures",
                max_results=4096,
            )
            system.run()
            edos.run(400)
            system.run()
            return [to_xml(item) for item in task.results()]

        interpreted = failures("interpreted")
        compiled = failures("compiled")
        assert compiled, "a 30% failure rate should produce failures"
        assert compiled == interpreted


def _single_peer(mode: str) -> tuple:
    system = P2PMSystem(seed=1, execution_mode=mode)
    peer = system.add_peer("solo")
    return system, peer


def _chaos_subscription(peer, sub_id: str, template: str, threshold: int = 1):
    text = (
        f'for $x in {CHAOS_FUNCTION}(<p>solo</p>) '
        f'where $x.kind = "chaos" and $x.n >= {threshold} return {template}'
    )
    got: list[str] = []
    handle = peer.subscribe(text, sub_id=sub_id)
    handle.on_result(lambda item, bucket=got: bucket.append(to_xml(item)))
    return handle, got


class TestFusedPipelines:
    def test_filter_restructure_fuses_into_one_segment(self):
        system, peer = _single_peer("compiled")
        handle, got = _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        pipelines = system.compiled_pipelines()
        assert len(pipelines) == 1
        assert [stage.kind for stage in pipelines[0].stages] == [FILTER, RESTRUCTURE]
        alerter = peer.alerter(CHAOS_FUNCTION)
        for n in range(10):
            alerter.emit_numbered(n)
        system.run()
        assert len(got) == 9  # n >= 1 filters out n=0
        assert pipelines[0].items_in == 10
        assert pipelines[0].items_out == 9
        # the intermediate filter boundary is dark: fused straight through
        stats = handle.stats()["compile"]
        assert stats["mode"] == "compiled"
        assert stats["segments_fused"] == 1
        assert stats["stages_fused"] == 2

    def test_cse_shares_restructure_across_subscriptions(self):
        system, peer = _single_peer("compiled")
        _, got_a = _chaos_subscription(
            peer, "qa", "<seen><n>{$x.n}</n></seen>", threshold=0
        )
        _, got_b = _chaos_subscription(
            peer, "qb", "<seen><n>{$x.n}</n></seen>", threshold=1
        )
        system.run()
        alerter = peer.alerter(CHAOS_FUNCTION)
        for n in range(20):
            alerter.emit_numbered(n)
        system.run()
        assert len(got_a) == 20 and len(got_b) == 19
        table = system.materialized
        assert table is not None and table.hits > 0, (
            "identical templates across subscriptions must share evaluations"
        )

    def test_reuse_of_dark_boundary_flips_it_live(self):
        # a second subscription reusing the (dark) intermediate filter stream
        # must receive every later item, identically in both modes
        def run(mode: str):
            system, peer = _single_peer(mode)
            _, got_a = _chaos_subscription(peer, "qa", "<seen><n>{$x.n}</n></seen>")
            system.run()
            alerter = peer.alerter(CHAOS_FUNCTION)
            for n in range(5):
                alerter.emit_numbered(n)
            system.run()
            _, got_b = _chaos_subscription(peer, "qb", "<other><n>{$x.n}</n></other>")
            system.run()
            for n in range(5, 10):
                alerter.emit_numbered(n)
            system.run()
            return got_a, got_b

        interpreted = run("interpreted")
        compiled = run("compiled")
        assert compiled == interpreted
        assert len(compiled[1]) == 5

    def test_cancel_keeps_shared_boundary_flowing(self):
        def run(mode: str):
            system, peer = _single_peer(mode)
            handle_a, got_a = _chaos_subscription(peer, "qa", "<seen><n>{$x.n}</n></seen>")
            system.run()
            alerter = peer.alerter(CHAOS_FUNCTION)
            for n in range(3):
                alerter.emit_numbered(n)
            system.run()
            _, got_b = _chaos_subscription(peer, "qb", "<other><n>{$x.n}</n></other>")
            system.run()
            handle_a.cancel()
            system.run()
            for n in range(3, 6):
                alerter.emit_numbered(n)
            system.run()
            return got_a, got_b

        assert run("compiled") == run("interpreted")

    def test_compile_report_is_printable(self):
        system, peer = _single_peer("compiled")
        _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        report = system.compile_report()
        assert "execution mode: compiled" in report
        assert "segments fused" in report
        interpreted_system, _ = _single_peer("interpreted")
        assert "interpreted" in interpreted_system.compile_report()

    def test_invalid_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution_mode"):
            P2PMSystem(execution_mode="jit")


class TestCopySafety:
    def test_plan_copy_drops_compiled_stage(self):
        system, peer = _single_peer("compiled")
        _, _ = _chaos_subscription(peer, "q0", "<seen><n>{$x.n}</n></seen>")
        system.run()
        record = peer.manager.database.get("q0")
        plan = record.task.plan
        staged = [
            node for node in plan.iter_nodes()
            if isinstance(node._stage, CompiledStage)
        ]
        assert staged, "deployment must have attached compiled stages"
        for node in staged:
            clone = node.copy()
            # the signature memo is carried (pure function of params)...
            assert clone._detail == node._detail
            # ...but the compiled stage is re-derived, never inherited
            assert clone._stage is None

    def test_stage_rebuilt_for_foreign_table(self):
        # a stage pinned on a node only short-circuits recompilation for the
        # same system's materialized table; a second system must build its own
        system_a, peer_a = _single_peer("compiled")
        _chaos_subscription(peer_a, "q0", "<seen><n>{$x.n}</n></seen>")
        system_a.run()
        system_b, peer_b = _single_peer("compiled")
        _chaos_subscription(peer_b, "q0", "<seen><n>{$x.n}</n></seen>")
        system_b.run()
        tables = set()
        for system in (system_a, system_b):
            for pipeline in system.compiled_pipelines():
                assert isinstance(pipeline, CompiledPipeline)
                for stage in pipeline.stages:
                    assert isinstance(stage.table, MaterializedTable)
                    assert stage.table is system.materialized
                    tables.add(id(stage.table))
        assert len(tables) == 2
