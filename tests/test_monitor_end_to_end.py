"""End-to-end tests: subscription manager, deployment, the meteo scenario."""

import pytest

from repro.algebra.plan import EXISTING, FILTER, JOIN, UNION
from repro.monitor import P2PMSystem
from repro.workloads import EdosNetwork, MeteoScenario, RSSFeedSimulator


class TestMeteoScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        scenario = MeteoScenario(threshold=10.0, slow_fraction=0.2, seed=11)
        scenario.deploy()
        scenario.run_traffic(300)
        return scenario

    def test_incidents_match_reference_semantics(self, scenario):
        expected = scenario.expected_incidents(scenario.calls)
        incidents = scenario.incidents()
        assert len(incidents) == len(expected)
        assert incidents, "the workload should produce at least one slow call"

    def test_incident_shape_follows_template(self, scenario):
        incident = scenario.incidents()[0]
        assert incident.tag == "incident"
        assert incident.attrib["type"] == "slowAnswer"
        assert incident.find("client").text in ("a.com", "b.com")
        assert incident.find("tstamp").text

    def test_plan_is_distributed_over_the_peers(self, scenario):
        task = scenario.task
        assert set(task.peers_involved()) >= {"a.com", "b.com", "meteo.com"}
        # communications crossed peer boundaries through channels
        assert task.channels_created
        assert scenario.system.network.stats.total_messages > 0

    def test_alertqos_channel_published_at_monitor(self, scenario):
        monitor = scenario.monitor
        assert monitor.net.channels.publishes("alertQoS")

    def test_filters_are_placed_at_the_sources(self, scenario):
        plan = scenario.task.plan
        for node in plan.find_all(FILTER):
            assert node.placement in ("a.com", "b.com", "meteo.com")
        assert plan.find_all(JOIN)[0].placement == "meteo.com"

    def test_stream_descriptions_published(self, scenario):
        descriptions = scenario.system.stream_db.all_stream_descriptions()
        operators = {d.operator for d in descriptions}
        assert {"outCOM", "inCOM", "Filter", "Union", "Join"} <= operators


class TestSubscriptionManagement:
    def test_subscription_database_records(self):
        scenario = MeteoScenario(seed=3)
        scenario.deploy()
        database = scenario.monitor.manager.database
        assert len(database) == 1
        assert "meteo-qos" in database
        assert database.get("meteo-qos").status == "deployed"

    def test_local_mode_subscription(self):
        system = P2PMSystem(seed=5)
        system.add_peer("feeds.example")
        monitor = system.add_peer("watcher.example")
        feed = RSSFeedSimulator("http://feeds.example/rss", seed=5)
        system.peer("feeds.example").register_feed(feed.feed_url, feed.snapshot)
        task = monitor.subscribe(
            'for $x in rssFeed(<p>feeds.example</p>) where $x.kind = "add" '
            "return <fresh>{$x.entry}</fresh>",
            max_results=256,
        )
        system.run()
        alerter = system.peer("feeds.example").alerter("rssFeed")
        alerter.poll()
        for _ in range(5):
            feed.tick()
            alerter.poll()
        system.run()
        assert task.publisher is None
        assert all(item.tag == "fresh" for item in task.results())
        assert task.results(), "feed churn should produce additions"

    def test_email_publication(self):
        scenario = MeteoScenario(seed=9)
        text = scenario.subscription_text().replace(
            'by publish as channel "alertQoS"', 'by email "ops@example.org"'
        )
        task = scenario.monitor.subscribe(text, sub_id="mail-alerts", max_results=1024)
        scenario.system.run()
        scenario.run_traffic(200)
        outbox = task.publisher.outbox
        assert len(outbox) == len(task.results())
        assert outbox, "slow calls should have been mailed"


class TestStreamReuseEndToEnd:
    def test_second_identical_subscription_reuses_streams(self):
        scenario = MeteoScenario(seed=13)
        first = scenario.deploy()
        assert first.reuse_report.nodes_reused == 0
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="meteo-qos-2", max_results=10_000
        )
        scenario.system.run()
        report = second.reuse_report
        assert report.nodes_reused > 0
        assert second.plan.count(EXISTING) > 0
        # fewer operators deployed the second time around
        assert second.operator_count < first.operator_count
        # and both tasks keep receiving results
        scenario.run_traffic(150)
        assert len(second.results()) == len(first.results())
        assert len(first.results()) > 0

    def test_overlapping_subscription_reuses_sources_only(self):
        scenario = MeteoScenario(seed=17)
        scenario.deploy()
        other = scenario.monitor.subscribe(
            """
            for $c in outCOM(<p>a.com</p>)
            where $c.callMethod = "GetHumidity"
            return <humidity-call>{$c.callId}</humidity-call>
            by publish as channel "humidity";
            """,
            sub_id="humidity-watch",
        )
        scenario.system.run()
        report = other.reuse_report
        # the outCOM alerter at a.com already exists and is reused
        assert any(kind == "alerter" for kind, _, _ in report.reused)
        assert other.plan.count(EXISTING) >= 1

    def test_reuse_can_be_disabled(self):
        scenario = MeteoScenario(seed=19)
        scenario.deploy()
        second = scenario.monitor.subscribe(
            scenario.subscription_text(), sub_id="no-reuse", reuse=False
        )
        assert second.reuse_report is None
        assert second.plan.count(EXISTING) == 0


class TestEdosMonitoring:
    def test_failed_download_monitoring(self):
        system = P2PMSystem(seed=23)
        edos = EdosNetwork(n_mirrors=2, n_clients=10, failure_rate=0.3, seed=23)
        for mirror in edos.mirrors:
            peer = system.add_peer(mirror)
            peer.add_alerter_hook(
                lambda alerter: edos.attach_alerter(alerter)
                if hasattr(alerter, "observe_call")
                else None
            )
        monitor = system.add_peer("monitor.edos.org")
        task = monitor.subscribe(
            """
            for $c in inCOM(<p>mirror0.edos.org</p> <p>mirror1.edos.org</p>)
            where $c.callMethod = "DownloadPackage" and $c.status = "fault"
            return <failure><mirror>{$c.callee}</mirror><client>{$c.caller}</client></failure>
            by publish as channel "edosFailures";
            """,
            sub_id="edos-failures",
            max_results=4096,
        )
        system.run()
        edos.run(400)
        system.run()
        reference = edos.reference_statistics()
        assert len(task.results()) == reference["failed_downloads"]
        assert task.results(), "with a 30% failure rate there should be failures"
