"""Differential correctness tests for the compiled filtering engine.

The two-stage FilterOperator (preFilter + bitmask AES + lazy-DFA YFilter,
all with their caches) must be extensionally indistinguishable from
evaluating every subscription directly via
:meth:`FilterSubscription.matches_extensionally`.  These tests run the
randomized benchmark workloads through both and require identical match
sets, item by item and subscription by subscription.
"""

import json

import pytest

from benchmarks.conftest import make_alert_items, make_subscription_set
from benchmarks.bench_yfilter import make_path_queries
from repro.algebra import FilterProcessor, GroupOperator, UnionOperator
from repro.filtering import FilterOperator, NaiveFilter, YFilterSigma
from repro.streams import Stream, collect
from repro.xmlmodel import Element, XPath


def oracle_matches(subscriptions, item):
    return sorted(
        subscription.sub_id
        for subscription in subscriptions
        if subscription.matches_extensionally(item)
    )


class TestFilterOperatorDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_oracle_on_random_workloads(self, seed):
        items = make_alert_items(40, seed=seed)
        subscriptions = make_subscription_set(300, seed=seed + 100)
        filter_op = FilterOperator(subscriptions)
        for item in items:
            assert filter_op.process(item).matched == oracle_matches(
                subscriptions, item
            )

    def test_matches_oracle_with_computed_conditions(self):
        items = make_alert_items(40, seed=7)
        subscriptions = make_subscription_set(300, seed=8, computed_fraction=0.5)
        filter_op = FilterOperator(subscriptions)
        for item in items:
            assert filter_op.process(item).matched == oracle_matches(
                subscriptions, item
            )

    def test_matches_naive_filter_batch(self):
        """The naive baseline and the engine's batch path are the same oracle."""
        items = make_alert_items(30, seed=9)
        subscriptions = make_subscription_set(200, seed=10, computed_fraction=0.3)
        fast = FilterOperator(subscriptions)
        naive = NaiveFilter(subscriptions)
        fast_results = fast.process_batch(items)
        naive_results = naive.process_batch(items)
        for fast_result, naive_result in zip(fast_results, naive_results):
            assert fast_result.matched == naive_result.matched

    def test_repeated_items_hit_caches_and_agree(self):
        """Cache-served answers must equal first-computation answers."""
        items = make_alert_items(20, seed=11)
        subscriptions = make_subscription_set(150, seed=12)
        filter_op = FilterOperator(subscriptions)
        first = [filter_op.process(item).matched for item in items]
        assert filter_op.mask_cache_hits + filter_op.mask_cache_misses == len(items)
        second = [filter_op.process(item).matched for item in items]
        assert first == second
        # the second pass is answered from the per-mask plan cache
        assert filter_op.mask_cache_hits >= len(items)

    def test_subscriptions_added_after_processing_are_seen(self):
        """Cache invalidation: new subscriptions must not be masked by caches."""
        items = make_alert_items(10, seed=13)
        subscriptions = make_subscription_set(50, seed=14)
        filter_op = FilterOperator(subscriptions)
        for item in items:
            filter_op.process(item)
        extra = make_subscription_set(30, seed=15)
        for subscription in extra:
            subscription.sub_id = f"extra-{subscription.sub_id}"
            filter_op.add_subscription(subscription)
        combined = subscriptions + extra
        for item in items:
            assert filter_op.process(item).matched == oracle_matches(combined, item)


class TestYFilterDifferential:
    def test_lazy_dfa_agrees_with_xpath(self):
        items = make_alert_items(25, seed=20)
        queries = make_path_queries(150, seed=21)
        nfa = YFilterSigma()
        compiled = {}
        for index, query in enumerate(queries):
            nfa.add_query(f"q{index}", query)
            compiled[f"q{index}"] = XPath.compile(query)
        for item in items:
            expected = {qid for qid, query in compiled.items() if query.matches(item)}
            assert nfa.match(item) == expected

    def test_lazy_dfa_and_pruned_path_agree(self):
        """Full matching and active_queries-pruned matching give the same ids."""
        items = make_alert_items(25, seed=22)
        queries = make_path_queries(120, seed=23)
        nfa = YFilterSigma()
        all_ids = set()
        for index, query in enumerate(queries):
            nfa.add_query(f"q{index}", query)
            all_ids.add(f"q{index}")
        half = {qid for qid in all_ids if int(qid[1:]) % 2 == 0}
        for item in items:
            full = nfa.match(item)
            assert nfa.match(item, active_queries=set(all_ids)) == full
            assert nfa.match(item, active_queries=half) == full & half
            assert nfa.match(item, active_queries=set()) == set()

    def test_dfa_cache_serves_repeated_shapes(self):
        items = make_alert_items(30, seed=24)
        nfa = YFilterSigma()
        for index, query in enumerate(make_path_queries(80, seed=25)):
            nfa.add_query(f"q{index}", query)
        first = [nfa.match(item) for item in items]
        hits_after_first = nfa.dfa_cache_hits
        second = [nfa.match(item) for item in items]
        assert first == second
        # the second pass traverses via cached transitions only
        assert nfa.dfa_cache_misses + nfa.dfa_cache_hits > 0
        assert nfa.dfa_cache_hits > hits_after_first
        assert nfa.dfa_state_count > 0

    @pytest.mark.parametrize(
        "query",
        [
            # relative paths: first child-axis step starts at root.children
            "b",
            "a/b",
            "soap/Envelope",
            "alert",
            "Envelope//Body",
            "*/Body",
            # empty structural prefix: attribute / text() first steps
            "@callId",
            "//@callId",
            "@missing",
            "text()",
            "//text()",
        ],
    )
    def test_relative_and_attribute_first_queries_match_oracle(self, query):
        from repro.xmlmodel import parse_xml

        items = make_alert_items(15, seed=27)
        docs = items + [
            parse_xml("<b><x/></b>"),
            parse_xml("<a><a><b/></a></a>"),
            parse_xml('<c x="1"><b/></c>'),
            parse_xml("<alert><soap><Envelope><Body/></Envelope></soap></alert>"),
        ]
        compiled = XPath.compile(query)
        nfa = YFilterSigma()
        nfa.add_query("q", query)
        for doc in docs:
            assert (nfa.match(doc) == {"q"}) == compiled.matches(doc), (
                query,
                doc.tag,
            )

    def test_adding_query_invalidates_dfa(self):
        items = make_alert_items(10, seed=26)
        nfa = YFilterSigma()
        nfa.add_query("a", "//Body")
        for item in items:
            nfa.match(item)
        nfa.add_query("b", "//Body")  # same shape, new id
        for item in items:
            result = nfa.match(item)
            assert ("a" in result) == ("b" in result)


class TestBitmaskMachinery:
    def test_mask_of_matches_condition_mask(self):
        subscriptions = make_subscription_set(80, seed=50)
        filter_op = FilterOperator(subscriptions)
        for subscription in subscriptions:
            assert filter_op.aes.mask_of(
                subscription.sub_id
            ) == subscription.condition_mask(filter_op.conditions)

    def test_inconsistent_mask_clamps_and_does_not_poison_cache(self):
        """The mask is the AES cache key, so it is authoritative over the list."""
        subscriptions = make_subscription_set(80, seed=51)
        filter_op = FilterOperator(subscriptions)
        aes = filter_op.aes
        items = make_alert_items(10, seed=52)
        for item in items:
            mask, ids = filter_op.prefilter.satisfied(item)
            if not ids:
                continue
            # drop one id from the mask but keep the full list: the cached
            # result for the narrow mask must only contain subscriptions
            # subsumed by that narrow mask
            narrow_mask = mask & ~(1 << ids[-1])
            narrow = aes.match(ids, narrow_mask)
            for sub_id in narrow.all_ids():
                assert aes.mask_of(sub_id) & narrow_mask == aes.mask_of(sub_id)
            # a later consistent call with the narrow mask gets the same
            # (unpoisoned) cached answer
            narrow_ids = [cid for cid in ids if cid != ids[-1]]
            consistent = aes.match(narrow_ids, narrow_mask)
            assert sorted(consistent.all_ids()) == sorted(narrow.all_ids())


class TestBatchPaths:
    def test_process_batch_equals_per_item(self):
        items = make_alert_items(25, seed=30)
        subscriptions = make_subscription_set(120, seed=31, computed_fraction=0.25)
        one = FilterOperator(subscriptions)
        two = FilterOperator(subscriptions)
        per_item = [one.process(item).matched for item in items]
        batched = [result.matched for result in two.process_batch(items)]
        assert per_item == batched
        assert one.items_processed == two.items_processed == len(items)

    def test_emit_many_through_filter_processor(self):
        """Batched emission drives FilterProcessor.on_batch, same survivors."""
        items = make_alert_items(40, seed=32)
        subscriptions = make_subscription_set(60, seed=33)
        subscription = subscriptions[0]

        per_item_src = Stream("per-item")
        batched_src = Stream("batched")
        per_item_proc = FilterProcessor(subscription)
        batched_proc = FilterProcessor(subscription)
        per_item_proc.connect(per_item_src)
        batched_proc.connect(batched_src)
        per_item_out = collect(per_item_proc.output)
        batched_out = collect(batched_proc.output)

        for item in items:
            per_item_src.emit(item)
        batched_src.emit_many(items)

        assert per_item_out == batched_out
        assert per_item_proc.items_in == batched_proc.items_in == len(items)
        assert per_item_proc.items_out == batched_proc.items_out
        # accounting is identical whichever path delivered the items
        assert per_item_src.stats.items == batched_src.stats.items == len(items)
        assert per_item_src.stats.bytes == batched_src.stats.bytes
        assert (
            per_item_proc.output.stats.items
            == batched_proc.output.stats.items
            == len(per_item_out)
        )


    def test_group_operator_cadence_identical_under_batching(self):
        """items_in must advance per item so `every`-based snapshots agree."""

        def run(batched: bool):
            src = Stream("src")
            group = GroupOperator(key=lambda item: item.tag, every=2)
            group.connect(src)
            out = collect(group.output)
            items = [Element(tag) for tag in ["a", "b", "a", "c", "b"]]
            if batched:
                src.emit_many(items)
            else:
                for item in items:
                    src.emit(item)
            src.close()
            return [item.attrib["total"] for item in out], group.items_in

        assert run(batched=False) == run(batched=True)

    def test_union_operator_batch_accounting(self):
        src = Stream("src")
        union = UnionOperator()
        union.connect(src)
        out = collect(union.output)
        src.emit_many([Element("a"), Element("b")])
        assert union.items_in == union.items_out == len(out) == 2


class TestCounterConsistency:
    def test_reset_counters_resets_every_stage(self):
        items = make_alert_items(20, seed=40)
        subscriptions = make_subscription_set(100, seed=41)
        filter_op = FilterOperator(subscriptions)
        filter_op.process_batch(items)
        filter_op.process_batch(items)  # generate cache hits everywhere
        filter_op.reset_counters()
        assert filter_op.items_processed == 0
        assert filter_op.items_matched == 0
        assert filter_op.complex_evaluations == 0
        assert filter_op.materializations == 0
        assert filter_op.mask_cache_hits == 0
        assert filter_op.mask_cache_misses == 0
        assert filter_op.prefilter.documents_processed == 0
        assert filter_op.prefilter.conditions_evaluated == 0
        assert filter_op.prefilter.cache_hits == 0
        assert filter_op.prefilter.cache_misses == 0
        assert filter_op.aes.nodes_visited == 0
        assert filter_op.aes.match_cache_hits == 0
        assert filter_op.aes.match_cache_misses == 0
        assert filter_op.yfilter.elements_processed == 0
        assert filter_op.yfilter.dfa_cache_hits == 0
        assert filter_op.yfilter.dfa_cache_misses == 0

    def test_reset_keeps_caches_warm_but_counters_zero(self):
        """reset_counters clears statistics, not the compiled caches."""
        items = make_alert_items(15, seed=42)
        subscriptions = make_subscription_set(80, seed=43)
        filter_op = FilterOperator(subscriptions)
        expected = [filter_op.process(item).matched for item in items]
        filter_op.reset_counters()
        again = [filter_op.process(item).matched for item in items]
        assert again == expected
        # warm caches answer the repeat pass
        assert filter_op.mask_cache_hits == len(items) - filter_op.mask_cache_misses
        assert filter_op.items_processed == len(items)

    def test_naive_filter_reset_counters(self):
        items = make_alert_items(5, seed=44)
        naive = NaiveFilter(make_subscription_set(20, seed=45))
        naive.process_batch(items)
        naive.reset_counters()
        assert naive.items_processed == 0
        assert naive.evaluations == 0
        assert naive.materializations == 0


class TestBenchmarkSmoke:
    def test_run_benchmarks_quick_mode(self, tmp_path):
        """The perf tracker runs end-to-end and writes a sane summary."""
        from benchmarks.run_benchmarks import main

        out = tmp_path / "BENCH_filter.json"
        assert main(["--quick", "--out", str(out)]) == 0
        summary = json.loads(out.read_text())
        assert summary["quick"] is True
        assert summary["differential_check"]["agrees_with_naive_oracle"] is True
        assert len(summary["filter_scaling"]) == 2
        assert len(summary["yfilter"]) == 2
        for row in summary["filter_scaling"] + summary["yfilter"]:
            assert row["items_per_sec"] > 0
        assert summary["naive_reference"]["items_per_sec"] > 0
