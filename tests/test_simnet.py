"""Tests for the deterministic network simulator."""

import pytest

from repro.net import Peer, SimNetwork, UnknownPeerError
from repro.net.simnet import broadcast
from repro.xmlmodel import Element


def make_network(n: int = 3, seed: int = 7) -> tuple[SimNetwork, list[Peer]]:
    network = SimNetwork(seed=seed)
    peers = [Peer(f"p{i}", network) for i in range(n)]
    return network, peers


class TestRegistration:
    def test_register_and_lookup(self):
        network, peers = make_network(2)
        assert network.peer("p0") is peers[0]
        assert network.has_peer("p1")
        assert not network.has_peer("nope")
        assert network.peer_ids == ["p0", "p1"]

    def test_duplicate_registration_rejected(self):
        network, _ = make_network(1)
        with pytest.raises(ValueError):
            Peer("p0", network)

    def test_unknown_peer_lookup(self):
        network, _ = make_network(1)
        with pytest.raises(UnknownPeerError):
            network.peer("ghost")

    def test_unregister(self):
        network, _ = make_network(2)
        network.unregister("p1")
        assert not network.has_peer("p1")

    def test_empty_peer_id_rejected(self):
        network = SimNetwork()
        with pytest.raises(ValueError):
            Peer("", network)

    def test_explicit_coordinates(self):
        network = SimNetwork()
        Peer("a", network, coordinates=(0.0, 0.0))
        Peer("b", network, coordinates=(3.0, 4.0))
        assert network.distance("a", "b") == pytest.approx(5.0)


class TestMessaging:
    def test_send_and_deliver(self):
        network, peers = make_network(2)
        received = []
        peers[1].register_handler("ping", lambda msg: received.append(msg))
        peers[0].send("p1", "ping", Element("hello"))
        assert network.pending_messages == 1
        network.run()
        assert len(received) == 1
        assert received[0].source == "p0"
        assert received[0].payload.tag == "hello"
        assert network.pending_messages == 0

    def test_send_to_unknown_peer_raises(self):
        network, peers = make_network(1)
        with pytest.raises(UnknownPeerError):
            peers[0].send("ghost", "ping", Element("x"))

    def test_unknown_kind_raises_on_delivery(self):
        network, peers = make_network(2)
        peers[0].send("p1", "mystery", Element("x"))
        with pytest.raises(ValueError):
            network.run()

    def test_duplicate_handler_rejected(self):
        _, peers = make_network(2)
        peers[0].register_handler("k", lambda m: None)
        with pytest.raises(ValueError):
            peers[0].register_handler("k", lambda m: None)

    def test_clock_advances_with_latency(self):
        network, peers = make_network(2)
        peers[1].register_handler("ping", lambda m: None)
        peers[0].send("p1", "ping", Element("x"))
        assert network.now == 0.0
        network.run()
        assert network.now > 0.0

    def test_handlers_can_send_followups(self):
        network, peers = make_network(3)
        log = []
        peers[1].register_handler(
            "relay", lambda m: peers[1].send("p2", "final", m.payload)
        )
        peers[2].register_handler("final", lambda m: log.append(m))
        peers[0].send("p1", "relay", Element("x"))
        delivered = network.run()
        assert delivered == 2
        assert len(log) == 1

    def test_run_with_max_steps(self):
        network, peers = make_network(2)
        peers[1].register_handler("ping", lambda m: None)
        for _ in range(5):
            peers[0].send("p1", "ping", Element("x"))
        assert network.run(max_steps=2) == 2
        assert network.pending_messages == 3

    def test_delivery_order_deterministic(self):
        network, peers = make_network(3)
        order = []
        peers[2].register_handler("tag", lambda m: order.append(m.payload.tag))
        # same latency link (self-distance zero differs); use same source so order
        # is by send sequence for equal deliver times
        peers[0].send("p2", "tag", Element("first"))
        peers[0].send("p2", "tag", Element("second"))
        network.run()
        assert order == ["first", "second"]

    def test_message_to_departed_peer_dropped(self):
        network, peers = make_network(2)
        peers[1].register_handler("ping", lambda m: None)
        peers[0].send("p1", "ping", Element("x"))
        network.unregister("p1")
        assert network.run() == 1  # delivered into the void, no crash

    def test_broadcast(self):
        network, peers = make_network(4)
        counts = []
        for peer in peers[1:]:
            peer.register_handler("news", lambda m, c=counts: c.append(m.destination))
        broadcast(network, "p0", ["p1", "p2", "p3"], "news", Element("x"))
        network.run()
        assert sorted(counts) == ["p1", "p2", "p3"]

    def test_advance_clock(self):
        network, _ = make_network(1)
        network.advance(5.0)
        assert network.now == 5.0
        with pytest.raises(ValueError):
            network.advance(-1)

    def test_trace_disabled_by_default(self):
        network, peers = make_network(2)
        peers[1].register_handler("ping", lambda m: None)
        peers[0].send("p1", "ping", Element("x"))
        assert network.trace == []
        network.trace_enabled = True
        peers[0].send("p1", "ping", Element("x"))
        assert len(network.trace) == 1


class TestStats:
    def test_byte_and_message_accounting(self):
        network, peers = make_network(2)
        peers[1].register_handler("data", lambda m: None)
        payload = Element("data", {"k": "v" * 50})
        peers[0].send("p1", "data", payload)
        network.run()
        stats = network.stats
        assert stats.total_messages == 1
        assert stats.total_bytes == payload.weight()
        assert stats.messages_between("p0", "p1") == 1
        assert stats.bytes_between("p0", "p1") == payload.weight()
        assert stats.bytes_between("p1", "p0") == 0
        assert stats.bytes_sent_by("p0") == payload.weight()
        assert stats.bytes_received_by("p1") == payload.weight()

    def test_busiest_peer(self):
        network, peers = make_network(3)
        peers[1].register_handler("x", lambda m: None)
        peers[2].register_handler("x", lambda m: None)
        peers[0].send("p1", "x", Element("a"))
        peers[0].send("p2", "x", Element("a"))
        network.run()
        assert network.stats.busiest_peer() == "p0"

    def test_reset_and_snapshot(self):
        network, peers = make_network(2)
        peers[1].register_handler("x", lambda m: None)
        peers[0].send("p1", "x", Element("a"))
        network.run()
        snap = network.stats.snapshot()
        assert snap["messages"] == 1
        network.stats.reset()
        assert network.stats.total_messages == 0
        assert network.stats.busiest_peer() is None

    def test_determinism_across_runs(self):
        def run_once():
            network, peers = make_network(5, seed=42)
            for peer in peers:
                peer.register_handler("x", lambda m: None)
            for i in range(4):
                peers[i].send(f"p{i + 1}", "x", Element("a"))
            network.run()
            return network.now, network.stats.total_bytes

        assert run_once() == run_once()
