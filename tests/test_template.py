"""Tests for bindings, value references and RETURN-clause templates."""

from repro.algebra import (
    RestructureTemplate,
    ValueRef,
    get_binding,
    is_tuple_item,
    make_tuple_item,
)
from repro.algebra.template import merge_tuple_items, parse_value_ref
from repro.xmlmodel import Element, parse_xml


def sample_alert() -> Element:
    return parse_xml(
        '<alert caller="http://a.com" callTimestamp="100" callId="7">'
        "<soap><method>GetTemperature</method></soap>"
        "</alert>"
    )


class TestTupleItems:
    def test_roundtrip(self):
        binding = {"c1": sample_alert(), "c2": Element("other", {"x": "1"})}
        item = make_tuple_item(binding)
        assert is_tuple_item(item)
        decoded = get_binding(item)
        assert set(decoded) == {"c1", "c2"}
        assert decoded["c1"].attrib["callId"] == "7"

    def test_raw_item_binds_default_var(self):
        alert = sample_alert()
        assert get_binding(alert, "c1") == {"c1": alert}
        assert "item" in get_binding(alert)

    def test_merge_tuple_items(self):
        left = sample_alert()
        right = Element("serverAlert", {"callId": "7"})
        merged = merge_tuple_items(left, right, "c1", "c2")
        binding = get_binding(merged)
        assert binding["c1"].tag == "alert"
        assert binding["c2"].tag == "serverAlert"

    def test_merge_with_existing_tuple(self):
        first = make_tuple_item({"a": Element("x"), "b": Element("y")})
        merged = merge_tuple_items(first, Element("z"), "ab", "c")
        assert set(get_binding(merged)) == {"a", "b", "c"}


class TestValueRef:
    def test_attribute_reference(self):
        ref = ValueRef.attribute("c1", "caller")
        assert ref.value({"c1": sample_alert()}) == "http://a.com"
        assert ref.value({"c1": Element("alert")}) is None
        assert ref.value({}) is None

    def test_path_reference(self):
        ref = ValueRef.path("c1", "soap/method")
        assert ref.value({"c1": sample_alert()}) == "GetTemperature"

    def test_whole_reference_and_node(self):
        alert = sample_alert()
        ref = ValueRef.whole("c1")
        assert ref.node({"c1": alert}) is alert
        assert ValueRef.path("c1", "soap").node({"c1": alert}).tag == "soap"
        assert ValueRef.attribute("c1", "caller").node({"c1": alert}) is None

    def test_literal(self):
        assert ValueRef.literal("42").value({}) == "42"

    def test_str_forms(self):
        assert str(ValueRef.attribute("c1", "caller")) == "$c1.caller"
        assert str(ValueRef.path("c1", "soap/method")) == "$c1/soap/method"
        assert str(ValueRef.whole("x")) == "$x"
        assert str(ValueRef.literal("7")) == "'7'"


class TestParseValueRef:
    def test_dot_notation(self):
        ref = parse_value_ref("$c1.callMethod")
        assert ref.kind == "attribute" and ref.var == "c1" and ref.detail == "callMethod"

    def test_path_notation(self):
        ref = parse_value_ref("$c2/soap/method")
        assert ref.kind == "path" and ref.var == "c2"

    def test_whole_variable(self):
        ref = parse_value_ref("$y")
        assert ref.kind == "self" and ref.var == "y"

    def test_literal(self):
        assert parse_value_ref("'hello'").detail == "hello"


class TestRestructureTemplate:
    def test_paper_return_clause(self):
        # <incident type="slowAnswer"><client>{$c1.caller}</client>
        #   <tstamp>{$c2.callTimestamp}</tstamp></incident>
        skeleton = Element(
            "incident",
            {"type": "slowAnswer"},
            [
                Element("client", text="{$c1.caller}"),
                Element("tstamp", text="{$c2.callTimestamp}"),
            ],
        )
        template = RestructureTemplate(skeleton)
        binding = {
            "c1": sample_alert(),
            "c2": Element("serverAlert", {"callTimestamp": "250"}),
        }
        output = template.instantiate(binding)
        assert output.attrib["type"] == "slowAnswer"
        assert output.find("client").text == "http://a.com"
        assert output.find("tstamp").text == "250"

    def test_attribute_holes(self):
        skeleton = Element("out", {"who": "{$c1.caller}", "fixed": "yes"})
        output = RestructureTemplate(skeleton).instantiate({"c1": sample_alert()})
        assert output.attrib == {"who": "http://a.com", "fixed": "yes"}

    def test_whole_variable_embeds_subtree(self):
        skeleton = Element("wrap", children=[Element("copy", text="{$e}")])
        output = RestructureTemplate(skeleton).instantiate({"e": sample_alert()})
        assert output.find("copy").find("alert").attrib["callId"] == "7"

    def test_path_hole_embeds_subtree(self):
        skeleton = Element("wrap", text="{$e/soap}")
        output = RestructureTemplate(skeleton).instantiate({"e": sample_alert()})
        assert output.find("soap").find("method").text == "GetTemperature"

    def test_missing_variable_becomes_empty(self):
        skeleton = Element("out", {"x": "{$nope.attr}"}, text="{$nope.attr}")
        output = RestructureTemplate(skeleton).instantiate({})
        assert output.attrib["x"] == ""
        assert output.text == ""

    def test_plain_text_preserved(self):
        skeleton = Element("out", text="static text")
        assert RestructureTemplate(skeleton).instantiate({}).text == "static text"

    def test_variables_listing(self):
        skeleton = Element(
            "incident",
            {"a": "{$c1.caller}"},
            [Element("t", text="{$c2.ts}"), Element("s", text="static")],
        )
        assert RestructureTemplate(skeleton).variables() == {"c1", "c2"}

    def test_instantiation_does_not_mutate_skeleton(self):
        skeleton = Element("out", text="{$c1.caller}")
        template = RestructureTemplate(skeleton)
        template.instantiate({"c1": sample_alert()})
        assert skeleton.text == "{$c1.caller}"
