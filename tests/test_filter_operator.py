"""Tests for the integrated two-stage FilterOperator (and the naive baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.filtering import FilterOperator, FilterSubscription, NaiveFilter, SimpleCondition
from repro.xmlmodel import Element, XPath, make_service_call, parse_xml
from repro.xmlmodel.axml import ServiceRegistry


def alert(**attrs) -> Element:
    item = Element("alert", attrs)
    item.append(parse_xml("<soap><body><c><d>data</d></c></body></soap>"))
    return item


def meteo_subscription(sub_id="slow-meteo") -> FilterSubscription:
    return FilterSubscription(
        sub_id,
        simple=[
            SimpleCondition("callMethod", "=", "GetTemperature"),
            SimpleCondition("callee", "=", "http://meteo.com"),
            SimpleCondition("duration", ">", "10"),
        ],
    )


class TestFilterOperator:
    def test_simple_subscription_matching(self):
        filter_op = FilterOperator([meteo_subscription()])
        hit = alert(callMethod="GetTemperature", callee="http://meteo.com", duration="12")
        miss = alert(callMethod="GetTemperature", callee="http://meteo.com", duration="5")
        assert filter_op.process(hit).matched == ["slow-meteo"]
        assert filter_op.process(miss).matched == []
        assert filter_op.items_processed == 2
        assert filter_op.items_matched == 1

    def test_complex_subscription_requires_both_stages(self):
        sub = FilterSubscription(
            "complex",
            simple=[SimpleCondition("type", "=", "ws")],
            complex_queries=[XPath.compile("//c/d")],
        )
        filter_op = FilterOperator([sub])
        match = alert(type="ws")
        wrong_attr = alert(type="other")
        wrong_body = Element("alert", {"type": "ws"})
        assert filter_op.process(match).matched == ["complex"]
        assert filter_op.process(wrong_attr).matched == []
        assert filter_op.process(wrong_body).matched == []

    def test_complex_stage_skipped_when_simple_fails(self):
        sub = FilterSubscription(
            "complex",
            simple=[SimpleCondition("type", "=", "ws")],
            complex_queries=[XPath.compile("//c/d")],
        )
        filter_op = FilterOperator([sub])
        filter_op.process(alert(type="other"))
        assert filter_op.complex_evaluations == 0
        filter_op.process(alert(type="ws"))
        assert filter_op.complex_evaluations == 1

    def test_multiple_complex_queries_are_conjunctive(self):
        sub = FilterSubscription(
            "conj",
            complex_queries=[XPath.compile("//c/d"), XPath.compile("//missing")],
        )
        filter_op = FilterOperator([sub])
        assert filter_op.process(alert()).matched == []

    def test_multiple_subscriptions(self):
        subs = [
            meteo_subscription("m"),
            FilterSubscription("any-call", [SimpleCondition("callMethod", "=", "GetTemperature")]),
            FilterSubscription("never", [SimpleCondition("callMethod", "=", "Nope")]),
        ]
        filter_op = FilterOperator(subs)
        result = filter_op.process(
            alert(callMethod="GetTemperature", callee="http://meteo.com", duration="30")
        )
        assert result.matched == ["any-call", "m"]
        assert result.any

    def test_duplicate_subscription_rejected(self):
        filter_op = FilterOperator([meteo_subscription()])
        with pytest.raises(ValueError):
            filter_op.add_subscription(meteo_subscription())

    def test_subscription_lookup_and_len(self):
        filter_op = FilterOperator([meteo_subscription()])
        assert len(filter_op) == 1
        assert filter_op.subscription_ids == ["slow-meteo"]
        assert filter_op.subscription("slow-meteo").sub_id == "slow-meteo"

    def test_reset_counters(self):
        filter_op = FilterOperator([meteo_subscription()])
        filter_op.process(alert(callMethod="GetTemperature", callee="http://meteo.com", duration="12"))
        filter_op.reset_counters()
        assert filter_op.items_processed == 0
        assert filter_op.items_matched == 0


class TestActiveXMLLaziness:
    def make_registry(self) -> ServiceRegistry:
        registry = ServiceRegistry()
        registry.register("storage", "site", lambda _: [parse_xml("<c><d>heavy</d></c>")])
        return registry

    def active_item(self, **attrs) -> Element:
        item = Element("root", attrs)
        item.append(make_service_call("storage", "site"))
        return item

    def paper_subscription(self) -> FilterSubscription:
        # $item.attr1="x" and $item.attr2="z" and $item//c/d
        return FilterSubscription(
            "paper",
            simple=[SimpleCondition("attr1", "=", "x"), SimpleCondition("attr2", "=", "z")],
            complex_queries=[XPath.compile("//c/d")],
        )

    def test_failed_simple_conditions_avoid_the_service_call(self):
        registry = self.make_registry()
        filter_op = FilterOperator([self.paper_subscription()], service_registry=registry)
        # attr2 = "y" != "z": the service call must NOT be performed
        result = filter_op.process(self.active_item(attr1="x", attr2="y"))
        assert result.matched == []
        assert registry.calls_performed == 0
        assert filter_op.materializations == 0

    def test_satisfied_simple_conditions_trigger_materialisation(self):
        registry = self.make_registry()
        filter_op = FilterOperator([self.paper_subscription()], service_registry=registry)
        result = filter_op.process(self.active_item(attr1="x", attr2="z"))
        assert result.matched == ["paper"]
        assert registry.calls_performed == 1
        assert filter_op.materializations == 1

    def test_naive_filter_always_materialises(self):
        registry = self.make_registry()
        naive = NaiveFilter([self.paper_subscription()], service_registry=registry)
        naive.process(self.active_item(attr1="x", attr2="y"))
        assert registry.calls_performed == 1


class TestNaiveFilter:
    def test_same_verdict_as_two_stage(self):
        subs = [
            meteo_subscription("m"),
            FilterSubscription(
                "body", [SimpleCondition("callMethod", "=", "GetTemperature")],
                [XPath.compile("//c/d")],
            ),
        ]
        fast = FilterOperator(subs)
        naive = NaiveFilter(subs)
        items = [
            alert(callMethod="GetTemperature", callee="http://meteo.com", duration="15"),
            alert(callMethod="GetTemperature", callee="http://meteo.com", duration="3"),
            alert(callMethod="Other"),
            Element("alert", {"callMethod": "GetTemperature"}),
        ]
        for item in items:
            assert fast.process(item).matched == naive.process(item).matched

    def test_duplicate_subscription_rejected(self):
        naive = NaiveFilter([meteo_subscription()])
        with pytest.raises(ValueError):
            naive.add_subscription(meteo_subscription())
        assert len(naive) == 1

    def test_evaluation_counter_grows_linearly(self):
        subs = [FilterSubscription(f"s{i}", [SimpleCondition("a", "=", str(i))]) for i in range(10)]
        naive = NaiveFilter(subs)
        naive.process(Element("x", {"a": "3"}))
        assert naive.evaluations == 10


# --------------------------------------------------------------------------- #
# Property: the two-stage filter agrees with the naive reference filter.
# --------------------------------------------------------------------------- #

_attr_names = st.sampled_from(["a", "b", "c", "d"])
_attr_values = st.sampled_from(["1", "2", "3", "x", "y"])
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_paths = st.sampled_from(["//u", "//u/v", "/item/u", "//w", "/item//v", "//u//w"])


@st.composite
def _subscriptions(draw):
    n_simple = draw(st.integers(min_value=0, max_value=3))
    simple = [
        SimpleCondition(draw(_attr_names), draw(_ops), draw(_attr_values))
        for _ in range(n_simple)
    ]
    n_complex = draw(st.integers(min_value=0, max_value=2))
    complex_queries = [XPath.compile(draw(_paths)) for _ in range(n_complex)]
    return simple, complex_queries


@st.composite
def _items(draw):
    attrs = draw(st.dictionaries(_attr_names, _attr_values, max_size=4))
    item = Element("item", attrs)
    structure = draw(st.sampled_from(["none", "u", "uv", "uw", "w"]))
    if structure == "u":
        item.append(Element("u"))
    elif structure == "uv":
        item.append(Element("u", children=[Element("v")]))
    elif structure == "uw":
        item.append(Element("u", children=[Element("w")]))
    elif structure == "w":
        item.append(Element("w"))
    return item


@settings(max_examples=120, deadline=None)
@given(
    subscription_specs=st.lists(_subscriptions(), min_size=1, max_size=6),
    items=st.lists(_items(), min_size=1, max_size=5),
)
def test_property_two_stage_agrees_with_naive(subscription_specs, items):
    subs = [
        FilterSubscription(f"q{i}", simple, complex_queries)
        for i, (simple, complex_queries) in enumerate(subscription_specs)
    ]
    fast = FilterOperator(subs)
    naive = NaiveFilter(subs)
    for item in items:
        assert fast.process(item).matched == naive.process(item).matched
