"""DHT behaviour under node failure: Chord repair, KadoP re-replication."""

import pytest

from repro.dht import ChordRing, KadopIndex
from repro.xmlmodel import parse_xml


def make_ring(n: int = 8) -> ChordRing:
    ring = ChordRing()
    for i in range(n):
        ring.join(f"node{i}")
    return ring


class TestChordFailure:
    def test_fail_removes_node_and_loses_keys(self):
        ring = make_ring()
        result = ring.put("some-key", "value")
        owner = result.node_id
        lost = ring.fail(owner)
        assert "some-key" in lost
        assert owner not in ring
        value, _ = ring.get("some-key")
        assert value is None  # abrupt failure: no transfer happened

    def test_graceful_leave_transfers_but_fail_does_not(self):
        ring = make_ring()
        ring.put("k", "v")
        owner = ring.lookup("k").node_id
        ring.leave(owner)
        value, _ = ring.get("k")
        assert value == "v"  # leave moved the key to the successor
        second_owner = ring.lookup("k").node_id
        assert ring.fail(second_owner) == ["k"]

    def test_successor_repair_after_failure(self):
        """Lookups still route correctly once the dead node's fingers are gone."""
        ring = make_ring(12)
        victim = ring.lookup("routing-probe").node_id
        ring.fail(victim)
        # every key now resolves to an alive node, via finger routing only
        for i in range(40):
            result = ring.lookup(f"key{i}")
            assert result.node_id in ring.node_ids
            assert victim not in result.path
        # and storing works against the repaired ring
        ring.put("after", "ok")
        value, _ = ring.get("after")
        assert value == "ok"

    def test_fingers_rebuilt_after_failure(self):
        ring = make_ring(6)
        nodes = list(ring.nodes())
        before = ring._fingers_of(nodes[0])
        victim = before[0].node_id if before[0] is not nodes[0] else nodes[1].node_id
        ring.fail(victim)
        survivor = next(node for node in ring.nodes())
        rebuilt = ring._fingers_of(survivor)
        assert all(finger.node_id != victim for finger in rebuilt)

    def test_fail_unknown_node_raises(self):
        ring = make_ring(2)
        with pytest.raises(KeyError):
            ring.fail("ghost")

    def test_membership_log_records_failures(self):
        ring = ChordRing()
        ring.join("a")
        ring.join("b")
        ring.fail("a")
        assert ring.membership_log == [("join", "a"), ("join", "b"), ("fail", "a")]


def description(peer: str, stream: str, operator: str) -> str:
    return (
        f'<Stream PeerId="{peer}" StreamId="{stream}" isAChannel="true">'
        f"<Operator><{operator}/></Operator><Operands/>"
        f"<Stats avgVolume='1'/></Stream>"
    )


class TestKadopFailure:
    @pytest.fixture
    def index(self) -> KadopIndex:
        ring = ChordRing()
        for i in range(8):
            ring.join(f"storage{i}")
        index = KadopIndex(ring)
        index.publish(parse_xml(description("p1", "s1", "inCom")), "d1")
        index.publish(parse_xml(description("p2", "s2", "outCom")), "d2")
        index.publish(parse_xml(description("p3", "s3", "inCom")), "d3")
        return index

    def test_all_documents_survive_any_single_failure(self, index):
        for victim in list(index.ring.node_ids):
            if len(index.ring) == 1:
                break
            index.fail_peer(victim)
            assert sorted(index.document_ids) == ["d1", "d2", "d3"]

    def test_queries_still_answered_after_failure(self, index):
        # fail whichever node stores the inCom postings list
        victim = index.ring.lookup("term:tag:inCom").node_id
        restored = index.fail_peer(victim)
        assert restored > 0
        matches = {doc_id for doc_id, _ in index.query("/Stream[Operator/inCom]")}
        assert matches == {"d1", "d3"}

    def test_readvertisement_after_failure(self, index):
        """A description republished after a crash is findable again."""
        victim = index.ring.lookup("doc:d2").node_id
        index.fail_peer(victim)
        # the re-replicated advertisement can still be retracted and replaced
        assert index.unpublish("d2") is True
        index.publish(parse_xml(description("p2", "s2-v2", "outCom")), "d2")
        matches = {doc_id for doc_id, _ in index.query("/Stream[Operator/outCom]")}
        assert matches == {"d2"}
        docs = dict(index.query("/Stream[Operator/outCom]"))
        assert docs["d2"].attrib["StreamId"] == "s2-v2"

    def test_fail_peer_emits_leave_event(self, index):
        events = []
        index.subscribe_membership(events.append)
        index.fail_peer("storage3")
        assert [(e.kind, e.peer_id) for e in events] == [("leave", "storage3")]

    def test_fail_unknown_peer_only_notifies(self, index):
        events = []
        index.subscribe_membership(events.append)
        assert index.fail_peer("never-joined") == 0
        assert [(e.kind, e.peer_id) for e in events] == [("leave", "never-joined")]

    def test_keys_restored_counter(self, index):
        before = index.keys_restored
        victim = index.ring.lookup("doc:d1").node_id
        index.fail_peer(victim)
        assert index.keys_restored > before
