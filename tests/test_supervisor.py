"""Worker supervision and crash failover: real process faults, typed errors.

The sharded runtime's substrate -- the worker processes themselves -- can
fail.  These tests inject *real* failures (SIGKILL mid-run, a worker stuck
in a sleep, a corrupted reply, a fork that dies) and assert the supervised
parent always converts them into either a deterministic failover or a typed
error, never a hang.  ``pytest-timeout`` is not available in this
environment, so every potentially-hanging assertion runs under a hand-rolled
thread deadline (:func:`finishes_within`) that fails the test instead of
wedging the suite.
"""

import multiprocessing
import os
import signal
import threading

import pytest

from repro.monitor import P2PMSystem
from repro.net.errors import (
    FailoverImpossible,
    ShardWorkerError,
    WorkerCrashed,
    WorkerHung,
    WorkerPoisoned,
)
from repro.net.supervisor import SupervisorConfig, WorkerFaultInjector
from repro.scenarios import make_scenario
from repro.workloads.chaos_feed import CHAOS_FUNCTION

#: generous wall-clock bound for "this must terminate" assertions; the
#: supervised paths finish in well under a second, the bound only exists to
#: stop a regression from hanging CI
DEADLINE = 60.0


def finishes_within(fn, seconds=DEADLINE):
    """Run ``fn`` on a daemon thread; fail the test if it never returns.

    A hang in the supervised protocol would otherwise block pytest forever
    (no pytest-timeout in this environment).  On deadline the leaked worker
    processes are reaped so one failing test cannot poison the rest of the
    session.
    """
    outcome = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # re-raised on the test thread below
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(seconds)
    if thread.is_alive():
        for proc in multiprocessing.active_children():
            proc.kill()
        pytest.fail(f"did not finish within {seconds}s: would have hung")
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")


def pinned_assigner(peer_id, shards):
    """Monitor on shard 0, source ``s<i>`` on shard ``1 + i % (shards-1)``."""
    if peer_id == "monitor":
        return 0
    if peer_id.startswith("s") and peer_id[1:].isdigit():
        return 1 + int(peer_id[1:]) % (shards - 1)
    return None


def build_system(n_sources=4, shards=3, **kwargs):
    """A started sharded system with one chaos-feed subscription."""
    system = P2PMSystem(
        runtime="sharded",
        shards=shards,
        failure_mode="oracle",
        shard_assigner=pinned_assigner,
        **kwargs,
    )
    sources = [f"s{i}" for i in range(n_sources)]
    for source in sources:
        system.add_peer(source)
    monitor = system.add_peer("monitor")
    peers = " ".join(f"<p>{source}</p>" for source in sources)
    handle = monitor.subscribe(
        f"for $x in {CHAOS_FUNCTION}({peers}) "
        'where $x.kind = "chaos" '
        "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>",
        sub_id="watch",
    )
    system.run()
    received = []
    handle.on_result(
        lambda item: received.append((item.find("src").text, int(item.find("n").text)))
    )
    system.start_runtime()
    return system, sources, received


def pump(system, sources, ticks):
    for tick in ticks:
        for source in sources:
            if system.is_alive(source):
                system.drive_alerter(source, CHAOS_FUNCTION, "emit_numbered", tick)
        system.run()


class TestCrashFailover:
    def test_sigkill_mid_run_fails_over_and_keeps_delivering(self):
        """A real SIGKILL: survivors' alerts keep flowing, counters record it."""
        system, sources, received = build_system()
        runtime = system.runtime

        def scenario():
            pump(system, sources, range(3))
            assert len(received) == 12
            # kill the worker owning s0/s2 out-of-band -- the real signal,
            # not a cooperative stop.  Join it so the pipe is verifiably
            # dead before the next turn (otherwise whether the kill lands
            # before or after the next emissions is a race)
            victim = runtime.shard_for("s0")
            os.kill(runtime._procs[victim].pid, signal.SIGKILL)
            runtime._procs[victim].join(timeout=10)
            pump(system, sources, range(3, 6))
            system.shutdown()
            return victim

        victim = finishes_within(scenario)
        assert runtime.lost_shards == {victim}
        assert isinstance(runtime.supervisor.lost[victim], WorkerCrashed)
        assert sorted(runtime.failed_over_peers) == ["s0", "s2"]
        # the failed-over sources stop at the kill; the survivors cover the
        # whole run (the kill lands between epochs here, so not even the
        # kill-tick emissions are lost)
        survivor_alerts = [(p, n) for p, n in received if p in ("s1", "s3")]
        assert sorted(survivor_alerts) == [
            (p, n) for p in ("s1", "s3") for n in range(6)
        ]
        stats = system.network.stats.reliability_snapshot()
        assert stats["worker_restarts"] == 1
        assert stats["peers_failed_over"] == 2

    def test_hung_worker_is_killed_and_failed_over(self):
        """A wedged worker trips the turn deadline, not an infinite wait."""
        system, sources, received = build_system(
            supervisor_config=SupervisorConfig(turn_timeout=1.0, poll_interval=0.02)
        )
        runtime = system.runtime

        def scenario():
            pump(system, sources, range(2))
            victim = runtime.shard_for("s0")
            runtime.inject_worker_fault("hang", victim)
            system.run()  # the hang fires here; failover settles before
            pump(system, sources, range(2, 4))  # ...the next emissions
            straggler_killed = not runtime._procs[victim].is_alive()
            system.shutdown()
            return victim, straggler_killed

        victim, straggler_killed = finishes_within(scenario)
        assert isinstance(runtime.supervisor.lost[victim], WorkerHung)
        assert straggler_killed
        assert sorted(runtime.failed_over_peers) == ["s0", "s2"]
        # the hang was noticed mid-epoch: that epoch stalled, on record
        assert system.network.stats.reliability_snapshot()["epochs_stalled"] >= 1
        assert [(p, n) for p, n in received if p == "s1"] == [
            ("s1", n) for n in range(4)
        ]

    def test_poisoned_reply_is_classified_and_failed_over(self):
        """A malformed reply means untrusted worker state: kill and fail over."""
        system, sources, received = build_system()
        runtime = system.runtime

        def scenario():
            pump(system, sources, range(2))
            runtime.inject_worker_fault("corrupt", runtime.shard_for("s0"))
            pump(system, sources, range(2, 4))
            system.shutdown()

        finishes_within(scenario)
        victim = runtime.shard_for("s0")
        failure = runtime.supervisor.lost[victim]
        assert isinstance(failure, WorkerPoisoned)
        assert "expected" in str(failure)
        assert sorted(runtime.failed_over_peers) == ["s0", "s2"]

    def test_losing_the_majority_is_a_typed_abort_not_a_hang(self):
        """>half the shards gone: FailoverImpossible, sticky, and shutdown works."""
        system, sources, _ = build_system()
        runtime = system.runtime

        def scenario():
            pump(system, sources, range(2))
            runtime.inject_worker_fault("kill", 1)
            runtime.inject_worker_fault("kill", 2)
            with pytest.raises(FailoverImpossible) as excinfo:
                pump(system, sources, range(2, 4))
            # the abort is sticky: every later epoch refuses with the same
            # typed error instead of running on a minority of the peers
            with pytest.raises(FailoverImpossible):
                system.run()
            system.shutdown()
            return excinfo.value

        error = finishes_within(scenario)
        assert sorted(error.lost) == [1, 2]
        assert error.shards == 3

    def test_unsupervised_mode_raises_typed_error_on_crash(self):
        """supervise=False keeps PR8 behaviour minus the hang: typed, no failover."""
        system, sources, _ = build_system(supervise=False)
        runtime = system.runtime
        assert runtime.supervisor is None

        def scenario():
            pump(system, sources, range(2))
            os.kill(runtime._procs[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed, match="unsupervised"):
                pump(system, sources, range(2, 4))
            system.shutdown()

        finishes_within(scenario)
        assert runtime.failed_over_peers == []


class TestTypedWorkerErrors:
    def test_remote_exception_carries_traceback(self):
        """A worker-side exception surfaces as ShardWorkerError with the trace."""
        system, sources, _ = build_system()

        def scenario():
            system.drive_alerter("s0", CHAOS_FUNCTION, "no_such_method")
            with pytest.raises(ShardWorkerError) as excinfo:
                pump(system, sources, range(1))
            system.shutdown()
            return excinfo.value

        error = finishes_within(scenario)
        assert "AttributeError" in str(error)
        assert any("no_such_method" in trace for trace in error.tracebacks)


class TestResourceHygiene:
    def test_shutdown_reaps_processes_and_descriptors(self):
        baseline_fds = len(os.listdir("/proc/self/fd"))

        def scenario():
            system, sources, _ = build_system()
            pump(system, sources, range(2))
            system.shutdown()
            return system

        system = finishes_within(scenario)
        assert multiprocessing.active_children() == []
        assert system.runtime._conns == [] and system.runtime._procs == []
        assert len(os.listdir("/proc/self/fd")) == baseline_fds

    def test_shutdown_after_failover_reaps_everything(self):
        baseline_fds = len(os.listdir("/proc/self/fd"))

        def scenario():
            system, sources, _ = build_system()
            system.runtime.inject_worker_fault("kill", 1)
            pump(system, sources, range(2))
            system.shutdown()

        finishes_within(scenario)
        assert multiprocessing.active_children() == []
        assert len(os.listdir("/proc/self/fd")) == baseline_fds

    def test_mid_start_failure_leaks_nothing(self, monkeypatch):
        """A fork that explodes unwinds every already-started worker and pipe."""
        from repro.net import shard as shard_module

        real_context = shard_module.get_context("fork")
        attempts = []

        class ExplodingContext:
            Pipe = staticmethod(real_context.Pipe)

            @staticmethod
            def Process(*args, **kwargs):
                proc = real_context.Process(*args, **kwargs)
                if len(attempts) >= 1:  # second worker never comes up
                    proc.start = _explode  # type: ignore[method-assign]
                attempts.append(proc)
                return proc

        def _explode():
            raise OSError("fork failed (injected)")

        monkeypatch.setattr(
            shard_module, "get_context", lambda kind: ExplodingContext
        )
        baseline_fds = len(os.listdir("/proc/self/fd"))
        system = P2PMSystem(runtime="sharded", shards=3, failure_mode="oracle")
        system.add_peer("src")
        monitor = system.add_peer("monitor")
        monitor.subscribe(
            f"for $x in {CHAOS_FUNCTION}(<p>src</p>) "
            'where $x.kind = "chaos" return <seen>{$x.n}</seen>',
            sub_id="watch",
        )
        system.run()

        def scenario():
            with pytest.raises(OSError, match="injected"):
                system.start_runtime()

        finishes_within(scenario)
        assert not system.runtime.started
        assert system.runtime._procs == []
        assert system.runtime._conns == []
        assert multiprocessing.active_children() == []
        assert len(os.listdir("/proc/self/fd")) == baseline_fds


class TestFaultInjector:
    def test_unspecified_shard_is_drawn_deterministically(self):
        picks = [
            WorkerFaultInjector(schedule=((5, "kill", None),), seed=42).take(
                5, [1, 2, 3]
            )
            for _ in range(3)
        ]
        assert picks[0] == picks[1] == picks[2]
        assert picks[0][0][0] == "kill"

    def test_faults_against_lost_shards_are_skipped(self):
        injector = WorkerFaultInjector()
        injector.at_epoch(3, "kill", 1)
        assert injector.take(3, [2]) == []  # shard 1 already lost
        assert injector.injected == []

    def test_unknown_kind_is_rejected(self):
        injector = WorkerFaultInjector()
        with pytest.raises(ValueError, match="kind"):
            injector.at_epoch(1, "explode")
        with pytest.raises(ValueError, match="kind"):
            injector.arm("explode")


class TestWorkerFaultScenarios:
    def test_worker_crash_scenario_is_deterministic(self):
        first = make_scenario("worker-crash", seed=3).run()
        second = make_scenario("worker-crash", seed=3).run()
        assert first.fingerprint == second.fingerprint
        assert first.worker_faults == second.worker_faults
        assert first.ok

    def test_worker_fault_scenarios_refuse_single_runtime(self):
        with pytest.raises(ValueError, match="sharded"):
            make_scenario("worker-crash", seed=0, runtime="single")

    def test_worker_fault_action_requires_sharded_runtime(self):
        from repro.scenarios.chaos import ChaosScenario, ScenarioAction

        scenario = ChaosScenario(
            name="bad",
            ticks=3,
            schedule=(ScenarioAction(1, "worker-kill", 1),),
        )
        with pytest.raises(ValueError, match="sharded"):
            scenario.run()
