"""Tests for the preFilter and the AES hash-tree."""

from repro.filtering import (
    AESFilter,
    ConditionRegistry,
    FilterSubscription,
    PreFilter,
    SimpleCondition,
)
from repro.xmlmodel import Element, XPath


def c(attribute: str, op: str, value: str) -> SimpleCondition:
    return SimpleCondition(attribute, op, value)


class TestPreFilter:
    def test_returns_sorted_satisfied_ids(self):
        registry = ConditionRegistry()
        ids = [
            registry.register(c("method", "=", "GetTemperature")),
            registry.register(c("callee", "=", "meteo")),
            registry.register(c("duration", ">", "10")),
        ]
        prefilter = PreFilter(registry)
        item = Element("alert", {"method": "GetTemperature", "duration": "20"})
        satisfied = prefilter.satisfied_conditions(item)
        assert satisfied == sorted([ids[0], ids[2]])

    def test_only_root_attributes_are_considered(self):
        registry = ConditionRegistry()
        registry.register(c("inner", "=", "1"))
        prefilter = PreFilter(registry)
        item = Element("alert", {}, [Element("child", {"inner": "1"})])
        assert prefilter.satisfied_conditions(item) == []

    def test_conditions_added_after_construction_are_seen(self):
        registry = ConditionRegistry()
        prefilter = PreFilter(registry)
        assert prefilter.satisfied_conditions(Element("a", {"x": "1"})) == []
        new_id = registry.register(c("x", "=", "1"))
        assert prefilter.satisfied_conditions(Element("a", {"x": "1"})) == [new_id]

    def test_counters(self):
        registry = ConditionRegistry()
        registry.register(c("x", "=", "1"))
        registry.register(c("y", "=", "2"))
        prefilter = PreFilter(registry)
        prefilter.satisfied_conditions(Element("a", {"x": "1"}))
        assert prefilter.documents_processed == 1
        # only the condition on the present attribute was evaluated
        assert prefilter.conditions_evaluated == 1
        prefilter.reset_counters()
        assert prefilter.documents_processed == 0


class TestAESFilter:
    def build_paper_example(self):
        """The Q1..Q6 example of Section 4 (Figure 6)."""
        registry = ConditionRegistry()
        c1 = c("a1", "=", "v1")
        c2 = c("a2", "=", "v2")
        c3 = c("a3", "=", "v3")
        c4 = c("a4", "=", "v4")
        # register in order so ids follow the paper's numbering
        for cond in (c1, c2, c3, c4):
            registry.register(cond)
        query = XPath.compile("//q")
        subs = [
            FilterSubscription("Q1", [c1, c2], [query]),
            FilterSubscription("Q2", [c1, c2], [query]),
            FilterSubscription("Q3", [c3], [query]),
            FilterSubscription("Q4", [c1, c3], [query]),
            FilterSubscription("Q5", [c1]),
            FilterSubscription("Q6", [c1, c2, c4], [query]),
        ]
        aes = AESFilter(registry)
        aes.add_subscriptions(subs)
        return registry, aes

    def test_paper_example_match(self):
        registry, aes = self.build_paper_example()
        # document satisfies C1 and C3 (ids 0 and 2)
        match = aes.match([0, 2])
        assert set(match.simple_matches) == {"Q5"}
        assert set(match.active_complex) == {"Q3", "Q4"}

    def test_all_conditions_satisfied(self):
        registry, aes = self.build_paper_example()
        match = aes.match([0, 1, 2, 3])
        assert set(match.simple_matches) == {"Q5"}
        assert set(match.active_complex) == {"Q1", "Q2", "Q3", "Q4", "Q6"}

    def test_no_conditions_satisfied(self):
        registry, aes = self.build_paper_example()
        match = aes.match([])
        assert match.simple_matches == []
        assert match.active_complex == []

    def test_partial_prefix_not_matched(self):
        registry, aes = self.build_paper_example()
        # C2 alone: no subscription has {C2} as its full simple-condition set
        match = aes.match([1])
        assert match.all_ids() == []

    def test_subscription_without_simple_conditions_always_active(self):
        registry = ConditionRegistry()
        aes = AESFilter(registry)
        aes.add_subscription(FilterSubscription("pure", [], [XPath.compile("//x")]))
        aes.add_subscription(FilterSubscription("trivial", [], []))
        match = aes.match([])
        assert match.simple_matches == ["trivial"]
        assert match.active_complex == ["pure"]

    def test_node_count_shows_prefix_sharing(self):
        registry, aes = self.build_paper_example()
        # sequences: [0,1] x2, [2], [0,2], [0], [0,1,3] -> distinct prefixes:
        # root, 0, 0-1, 0-1-3, 0-2, 2  => 6 nodes including root
        assert aes.node_count() == 6

    def test_subscription_count(self):
        registry, aes = self.build_paper_example()
        assert aes.subscription_count == 6

    def test_satisfied_superset_matches(self):
        registry = ConditionRegistry()
        cond_a = c("a", "=", "1")
        cond_b = c("b", "=", "2")
        registry.register(cond_a)
        registry.register(cond_b)
        aes = AESFilter(registry)
        aes.add_subscription(FilterSubscription("just-b", [cond_b]))
        # satisfied = {a, b} -- the subscription on b alone must still match,
        # even though a precedes b in the global order
        match = aes.match([0, 1])
        assert match.simple_matches == ["just-b"]
