#!/usr/bin/env python
"""Check the documentation: links must resolve, python snippets must compile.

Usage::

    python scripts/check_docs.py                 # README.md + docs/*.md
    python scripts/check_docs.py README.md docs/ARCHITECTURE.md

Two checks per markdown file:

* **Dead links** — every relative markdown link ``[text](target)`` must
  point at an existing file or directory (resolved against the linking
  file's directory; ``#fragment`` suffixes are stripped).  External
  schemes (``http:``, ``https:``, ``mailto:``) and pure in-page anchors
  are skipped — CI must not depend on the network.
* **Snippets** — every fenced ```` ```python ```` block must at least
  *compile* (``compile(..., "exec")``).  Snippets are illustrative, not
  executed, so this catches syntax rot without requiring each block to be
  self-contained.

Exit code 0 when clean, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren (no nesting)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(text: str):
    """Yield (line_number, target) for every markdown link in ``text``."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def iter_python_snippets(text: str):
    """Yield (first_line_number, source) per ```python fenced block."""
    lines = text.splitlines()
    block: list[str] | None = None
    start = 0
    for lineno, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line)
        if block is None:
            if fence and fence.group(1) == "python":
                block = []
                start = lineno + 1
        elif fence:
            yield start, "\n".join(block)
            block = None
        else:
            block.append(line)


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:  # explicit argument outside the repo
        rel = path

    for lineno, target in iter_links(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{rel}:{lineno}: dead link -> {target}")

    for lineno, source in iter_python_snippets(text):
        try:
            compile(source, f"{rel}:{lineno}", "exec")
        except SyntaxError as exc:
            problems.append(
                f"{rel}:{lineno}: snippet does not compile "
                f"(line {exc.lineno}: {exc.msg})"
            )
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: no such file")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"check_docs: {len(files)} file(s), {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
