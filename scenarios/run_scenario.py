#!/usr/bin/env python
"""Run a named chaos scenario and check its invariants.

Usage::

    PYTHONPATH=src python scenarios/run_scenario.py --list
    PYTHONPATH=src python scenarios/run_scenario.py partition-heal --seed 7
    PYTHONPATH=src python scenarios/run_scenario.py churn-soak --seed 3 \
        --check-determinism --json

Exit codes: 0 all invariants hold (and, with ``--check-determinism``, the
two same-seed runs produced byte-identical traces); 1 an invariant failed;
2 the determinism check failed; 3 the ``--compare-modes`` differential found
a compiled-vs-interpreted fingerprint divergence; 4 the ``--compare-runtimes``
differential found a single-vs-sharded result-multiset divergence.  The
nightly ``chaos-soak`` workflow sweeps the (scenario x seed) matrix through
this entry point, in interpreted mode and with ``--compare-modes``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.scenarios import make_scenario, scenario_names  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", nargs="?", help="scenario name (see --list)")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed (default 0)")
    parser.add_argument(
        "--failure-mode",
        choices=("detector", "oracle"),
        default=None,
        help="override how failures are noticed (default: the scenario's own, "
        "normally 'detector')",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("interpreted", "compiled"),
        default=None,
        help="plan execution mode (default: the scenario's own, normally "
        "'interpreted')",
    )
    parser.add_argument(
        "--compare-modes",
        action="store_true",
        help="also run the scenario in the other execution mode and require "
        "byte-identical trace fingerprints",
    )
    parser.add_argument(
        "--runtime",
        choices=("single", "sharded"),
        default=None,
        help="execution runtime (default 'single'; 'sharded' partitions the "
        "peers across worker processes and forces failure-mode 'oracle')",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="worker-process count for --runtime sharded (default 2)",
    )
    parser.add_argument(
        "--compare-runtimes",
        action="store_true",
        help="run the scenario single-process and sharded (both in oracle "
        "failure mode) and require the same multiset of delivered results",
    )
    parser.add_argument("--list", action="store_true", help="list known scenarios")
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run twice and require byte-identical event traces",
    )
    parser.add_argument("--json", action="store_true", help="print the full summary as JSON")
    args = parser.parse_args(argv)

    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    if not args.scenario:
        parser.error("a scenario name is required (or --list)")

    result = make_scenario(
        args.scenario,
        seed=args.seed,
        failure_mode=args.failure_mode,
        execution_mode=args.execution_mode,
        runtime=args.runtime,
        shards=args.shards,
    ).run()

    if args.json:
        print(json.dumps(result.summary(), indent=2))
    else:
        print(
            f"{result.name} seed={result.seed}: emitted={len(result.emitted)} "
            f"received={len(result.received)} status={result.final_status} "
            f"recoveries={sum(1 for e in result.recovery_events if e.outcome == 'recovering')}"
        )
        for invariant in result.invariants:
            mark = "PASS" if invariant.ok else "FAIL"
            print(f"  [{mark}] {invariant.name}: {invariant.detail}")
        print(f"  trace fingerprint: {result.fingerprint}")

    exit_code = 0 if result.ok else 1

    if args.check_determinism:
        replay = make_scenario(
            args.scenario,
            seed=args.seed,
            failure_mode=args.failure_mode,
            execution_mode=args.execution_mode,
        ).run()
        if replay.fingerprint != result.fingerprint:
            print(
                "DETERMINISM VIOLATION: same seed produced different traces "
                f"({result.fingerprint} vs {replay.fingerprint})"
            )
            return 2
        print("  determinism: identical trace on replay")

    if args.compare_modes:
        base_mode = args.execution_mode or "interpreted"
        other_mode = "compiled" if base_mode == "interpreted" else "interpreted"
        other = make_scenario(
            args.scenario,
            seed=args.seed,
            failure_mode=args.failure_mode,
            execution_mode=other_mode,
        ).run()
        if other.fingerprint != result.fingerprint:
            print(
                f"EXECUTION-MODE DIVERGENCE: {base_mode} vs {other_mode} traces "
                f"differ ({result.fingerprint} vs {other.fingerprint})"
            )
            return 3
        print(f"  execution modes: {other_mode} trace identical to {base_mode}")

    if args.compare_runtimes:
        # sharded forces oracle failure mode, so the single-process baseline
        # must run oracle too for the delivered multisets to be comparable
        single = make_scenario(
            args.scenario,
            seed=args.seed,
            failure_mode="oracle",
            execution_mode=args.execution_mode,
        ).run()
        sharded = make_scenario(
            args.scenario,
            seed=args.seed,
            execution_mode=args.execution_mode,
            runtime="sharded",
            shards=args.shards,
        ).run()
        if sorted(single.received) != sorted(sharded.received):
            print(
                "RUNTIME DIVERGENCE: single-process and sharded runs "
                f"delivered different result multisets "
                f"({len(single.received)} vs {len(sharded.received)} results)"
            )
            return 4
        print(
            f"  runtimes: sharded delivered the same {len(single.received)} "
            "results as single-process"
        )

    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
