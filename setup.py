"""Legacy setup shim.

The execution environment has no network access and no `wheel` package, so
PEP 517 editable installs (`pip install -e .` with build isolation) cannot
build a wheel.  This setup.py lets `pip install -e . --no-use-pep517
--no-build-isolation` (and plain `python setup.py develop`) work offline.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
